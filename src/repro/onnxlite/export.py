"""Export a model (or a pre-traced graph) to the onnxlite binary format.

Layout::

    ONXL | u32 version | u32 header_len | header JSON | weight payload

The JSON header records graph topology, operator attributes and per-tensor
(offset, nbytes, shape) entries; the payload is the concatenated raw fp32
weight data.  File size is therefore ``4 * n_params + O(graph text)``,
matching how real ONNX files scale.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

from repro.graph.ir import Graph, OpType
from repro.graph.trace import trace_model
from repro.nn.module import Module
from repro.nn.resnet import SearchableResNet18
from repro.onnxlite.schema import FORMAT_MAGIC, FORMAT_VERSION, ModelProto, OperatorProto, TensorProto

__all__ = ["build_model_proto", "export_graph", "export_model", "proto_to_bytes"]

# IR op -> onnxlite operator type string (deliberately ONNX-flavoured names).
_OP_NAMES = {
    OpType.CONV: "Conv",
    OpType.BATCH_NORM: "BatchNormalization",
    OpType.RELU: "Relu",
    OpType.MAX_POOL: "MaxPool",
    OpType.GLOBAL_AVG_POOL: "GlobalAveragePool",
    OpType.FLATTEN: "Flatten",
    OpType.FC: "Gemm",
    OpType.ADD: "Add",
}


def build_model_proto(model: Module, graph: Graph, name: str = "model") -> ModelProto:
    """Assemble a :class:`ModelProto` from a module and its traced graph."""
    inp = graph.ops(OpType.INPUT)[0]
    out = graph.ops(OpType.OUTPUT)[0]
    proto = ModelProto(name=name, input_shape=inp.out_shape, output_shape=out.out_shape)

    params = dict(model.named_parameters())
    buffers = dict(model.named_buffers())
    for tensor_name in sorted(params):
        proto.initializers.append(TensorProto(tensor_name, params[tensor_name].data))
    # Batch-norm running statistics ship in ONNX files too.
    for buffer_name in sorted(buffers):
        proto.initializers.append(TensorProto(buffer_name, buffers[buffer_name]))

    for node in graph.topological():
        if node.op in (OpType.INPUT, OpType.OUTPUT):
            continue
        proto.operators.append(
            OperatorProto(
                name=node.name,
                op_type=_OP_NAMES[node.op],
                inputs=[p.name for p in graph.predecessors(node)],
                outputs=[node.name],
                attrs=dict(node.attrs),
            )
        )
    return proto


def proto_to_bytes(proto: ModelProto) -> bytes:
    """Serialize a :class:`ModelProto` to the binary container."""
    entries = []
    payload = bytearray()
    for tensor in proto.initializers:
        entry = {
            "name": tensor.name,
            "shape": list(tensor.data.shape),
            "offset": len(payload),
            "nbytes": tensor.nbytes,
        }
        if tensor.quantized or tensor.dtype != "float32":
            entry["dtype"] = tensor.dtype
            # Per-channel scales serialize as a JSON list, scalars as a number.
            entry["scale"] = tensor.scale.tolist() if tensor.per_channel else tensor.scale
            entry["zero_point"] = tensor.zero_point
        entries.append(entry)
        payload.extend(tensor.data.tobytes())
    header = {
        "name": proto.name,
        "input_shape": list(proto.input_shape),
        "output_shape": list(proto.output_shape),
        "metadata": proto.metadata,
        "operators": [
            {
                "name": op.name,
                "op_type": op.op_type,
                "inputs": op.inputs,
                "outputs": op.outputs,
                "attrs": op.attrs,
            }
            for op in proto.operators
        ],
        "initializers": entries,
    }
    header_bytes = json.dumps(header).encode("utf-8")
    return (
        FORMAT_MAGIC
        + struct.pack("<II", FORMAT_VERSION, len(header_bytes))
        + header_bytes
        + bytes(payload)
    )


def export_graph(model: Module, graph: Graph, path: str | Path | None = None, name: str = "model") -> bytes:
    """Export a traced model; optionally write the container to ``path``."""
    blob = proto_to_bytes(build_model_proto(model, graph, name=name))
    if path is not None:
        Path(path).write_bytes(blob)
    return blob


def export_model(
    model: SearchableResNet18,
    input_hw: tuple[int, int] = (100, 100),
    path: str | Path | None = None,
    name: str = "model",
) -> bytes:
    """Trace and export a searchable ResNet in one step."""
    return export_graph(model, trace_model(model, input_hw=input_hw), path=path, name=name)
