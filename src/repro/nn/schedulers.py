"""Learning-rate schedulers.

The paper trains each trial for a fixed 5 epochs at constant LR; these
schedulers support the library's longer standalone training runs (step
decay, cosine annealing, linear warmup) with the PyTorch convention of
calling :meth:`step` once per epoch.
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "WarmupWrapper"]


class LRScheduler:
    """Base scheduler: tracks epochs and rewrites ``optimizer.lr``."""

    def __init__(self, optimizer: Optimizer) -> None:
        if not hasattr(optimizer, "lr"):
            raise TypeError(f"{type(optimizer).__name__} has no lr attribute")
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr)
        self.epoch = 0

    def get_lr(self) -> float:
        """The learning rate for the current epoch; subclasses override."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr

    @property
    def current_lr(self) -> float:
        """The optimizer's current learning rate."""
        return float(self.optimizer.lr)


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1, got {t_max}")
        if eta_min < 0:
            raise ValueError(f"eta_min must be non-negative, got {eta_min}")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1.0 + math.cos(math.pi * progress))


class WarmupWrapper(LRScheduler):
    """Linear warmup for ``warmup_epochs`` then delegate to another scheduler."""

    def __init__(self, scheduler: LRScheduler, warmup_epochs: int) -> None:
        if warmup_epochs < 1:
            raise ValueError(f"warmup_epochs must be >= 1, got {warmup_epochs}")
        super().__init__(scheduler.optimizer)
        self.inner = scheduler
        self.warmup_epochs = warmup_epochs

    def get_lr(self) -> float:
        if self.epoch <= self.warmup_epochs:
            return self.base_lr * self.epoch / self.warmup_epochs
        self.inner.epoch = self.epoch - self.warmup_epochs
        return self.inner.get_lr()
