"""ResNet-18 and its searchable variants (paper Sections 3.1-3.2).

:class:`SearchableResNet18` exposes exactly the Figure-2 knobs:

- stem convolution ``kernel_size`` / ``stride`` / ``padding``;
- optional max-pooling stage (``pool_choice``) with its own
  ``kernel_size_pool`` / ``stride_pool``;
- ``initial_output_feature`` f, widening through the four stages as
  ``[f, 2f, 4f, 8f]`` (the standard ResNet-18 progression — see DESIGN.md
  for why the paper's "amplified by a factor of four" text is overridden
  by its own Table 4/5 memory numbers);
- input channels 5 or 7 and a binary classification head.

The stock baseline (``build_baseline_resnet18``) is the f=64, 7x7/2/3 stem
with 3x3/2 max pool — torchvision's ResNet-18 adapted to N input channels
and 2 classes, the comparison model of paper Table 5.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.tensor.tensor import Tensor
from repro.utils.rng import SeedSequenceFactory

__all__ = ["BasicBlock", "SearchableResNet18", "build_baseline_resnet18", "build_model", "STAGE_WIDTH_MULTIPLIERS"]

# ResNet-18 widens by powers of two over its four stages.
STAGE_WIDTH_MULTIPLIERS = (1, 2, 4, 8)
BLOCKS_PER_STAGE = 2


class BasicBlock(Module):
    """The two-convolution residual block of ResNet-18.

    ``conv3x3 - BN - ReLU - conv3x3 - BN``, added to the (possibly
    1x1-projected) input, then ReLU.
    """

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1, rng=None) -> None:
        super().__init__()
        seeds = SeedSequenceFactory(0 if rng is None else int(rng))
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=seeds.rng("conv1")
        )
        self.bn1 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=seeds.rng("conv2"))
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.downsample: Module = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=seeds.rng("down")),
                BatchNorm2d(out_channels),
            )
        else:
            self.downsample = Identity()

    def forward(self, x: Tensor) -> Tensor:
        identity = self.downsample(x)
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return (out + identity).relu()


class SearchableResNet18(Module):
    """ResNet-18 parameterized by the paper's Figure-2 search space.

    Parameters
    ----------
    in_channels:
        5 (DEM + R, G, B, NIR) or 7 (+ NDVI, NDWI); any positive value is
        accepted so the model generalizes beyond the paper's dataset.
    num_classes:
        Output logits; 2 for drainage-crossing presence/absence.
    kernel_size, stride, padding:
        Stem convolution geometry (searched over {3,7} x {1,2} x {1,2,3}).
    pool_choice:
        1 to include the stem max-pool stage, 0 to skip it.
    kernel_size_pool, stride_pool:
        Max-pool geometry, only meaningful when ``pool_choice`` is 1.
    initial_output_feature:
        Stage-one width f (searched over {32, 48, 64}); later stages use
        2f, 4f, 8f and the FC head consumes 8f features.
    seed:
        Deterministic weight-init seed.
    """

    def __init__(
        self,
        in_channels: int = 5,
        num_classes: int = 2,
        kernel_size: int = 7,
        stride: int = 2,
        padding: int = 3,
        pool_choice: int = 1,
        kernel_size_pool: int = 3,
        stride_pool: int = 2,
        initial_output_feature: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if in_channels < 1:
            raise ValueError(f"in_channels must be positive, got {in_channels}")
        if num_classes < 2:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        if initial_output_feature < 1:
            raise ValueError(f"initial_output_feature must be positive, got {initial_output_feature}")
        if pool_choice not in (0, 1):
            raise ValueError(f"pool_choice must be 0 or 1, got {pool_choice}")

        seeds = SeedSequenceFactory(seed)
        f = initial_output_feature
        self.in_channels = in_channels
        self.num_classes = num_classes
        self.config = {
            "kernel_size": kernel_size,
            "stride": stride,
            "padding": padding,
            "pool_choice": pool_choice,
            "kernel_size_pool": kernel_size_pool,
            "stride_pool": stride_pool,
            "initial_output_feature": f,
        }

        self.conv1 = Conv2d(
            in_channels, f, kernel_size, stride=stride, padding=padding, bias=False, rng=seeds.rng("stem")
        )
        self.bn1 = BatchNorm2d(f)
        self.relu = ReLU()
        self.maxpool: Module = (
            MaxPool2d(kernel_size_pool, stride_pool) if pool_choice == 1 else Identity()
        )

        widths = [f * m for m in STAGE_WIDTH_MULTIPLIERS]
        strides = [1, 2, 2, 2]
        in_width = f
        for stage_idx, (width, stage_stride) in enumerate(zip(widths, strides), start=1):
            blocks = []
            for block_idx in range(BLOCKS_PER_STAGE):
                block_stride = stage_stride if block_idx == 0 else 1
                blocks.append(
                    BasicBlock(
                        in_width,
                        width,
                        stride=block_stride,
                        rng=seeds.seed_for("stage", stage_idx, "block", block_idx),
                    )
                )
                in_width = width
            setattr(self, f"layer{stage_idx}", Sequential(*blocks))

        self.avgpool = GlobalAvgPool2d()
        self.fc = Linear(widths[-1], num_classes, rng=seeds.rng("fc"))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"expected input (N, {self.in_channels}, H, W), got shape {tuple(x.shape)}"
            )
        x = self.maxpool(self.relu(self.bn1(self.conv1(x))))
        x = self.layer1(x)
        x = self.layer2(x)
        x = self.layer3(x)
        x = self.layer4(x)
        return self.fc(self.avgpool(x))

    def predict(self, x: Tensor):
        """Class predictions (argmax over logits) as an int array."""
        from repro.tensor.tensor import no_grad

        with no_grad():
            logits = self.forward(x)
        return logits.data.argmax(axis=1)


def build_baseline_resnet18(in_channels: int = 5, num_classes: int = 2, seed: int = 0) -> SearchableResNet18:
    """The stock ResNet-18 configuration used as the paper's benchmark."""
    return SearchableResNet18(
        in_channels=in_channels,
        num_classes=num_classes,
        kernel_size=7,
        stride=2,
        padding=3,
        pool_choice=1,
        kernel_size_pool=3,
        stride_pool=2,
        initial_output_feature=64,
        seed=seed,
    )


_CONFIG_KEYS = (
    "kernel_size",
    "stride",
    "padding",
    "pool_choice",
    "kernel_size_pool",
    "stride_pool",
    "initial_output_feature",
)


def build_model(config: Mapping[str, Any] | Any, num_classes: int = 2, seed: int = 0) -> SearchableResNet18:
    """Build a :class:`SearchableResNet18` from a search-space configuration.

    ``config`` may be a mapping or any object exposing the Figure-2 field
    names as attributes (e.g. :class:`repro.nas.config.ModelConfig`); it
    must also carry ``channels`` (the input channel count).
    """

    def get(key: str):
        if isinstance(config, Mapping):
            return config[key]
        return getattr(config, key)

    kwargs = {key: int(get(key)) for key in _CONFIG_KEYS}
    return SearchableResNet18(
        in_channels=int(get("channels")),
        num_classes=num_classes,
        seed=seed,
        **kwargs,
    )
