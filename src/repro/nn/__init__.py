"""Neural-network modules built on :mod:`repro.tensor`.

Provides the layer/module system the paper's models need (Conv2d, Linear,
BatchNorm2d, pooling, ReLU, Sequential), weight initialization, losses,
optimizers, serialization, model summaries — and the paper's model family:
:class:`~repro.nn.resnet.SearchableResNet18`, a ResNet-18 parameterized by
the Figure-2 search space.
"""

from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.loss import CrossEntropyLoss
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.schedulers import CosineAnnealingLR, LRScheduler, StepLR, WarmupWrapper
from repro.nn.resnet import BasicBlock, SearchableResNet18, build_baseline_resnet18, build_model
from repro.nn.serialize import load_state_dict, state_dict_to_bytes, state_dict_from_bytes
from repro.nn.summary import count_parameters, model_summary

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "ReLU",
    "Dropout",
    "Identity",
    "Flatten",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupWrapper",
    "CrossEntropyLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "BasicBlock",
    "SearchableResNet18",
    "build_baseline_resnet18",
    "build_model",
    "load_state_dict",
    "state_dict_to_bytes",
    "state_dict_from_bytes",
    "count_parameters",
    "model_summary",
]
