"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.tensor.functional import cross_entropy_logits
from repro.tensor.tensor import Tensor

__all__ = ["CrossEntropyLoss"]


class CrossEntropyLoss(Module):
    """Mean cross-entropy over raw logits and integer targets.

    The drainage-crossing task is binary, but the loss is written for any
    number of classes (the final FC layer emits 2 logits, as in the paper).
    """

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return cross_entropy_logits(logits, targets)

    def __repr__(self) -> str:
        return "CrossEntropyLoss()"
