"""Weight initialization schemes (Kaiming / Xavier / constant).

The searchable ResNet uses Kaiming-normal fan-out init for convolutions
and unit/zero init for batch-norm scale/shift, matching torchvision's
ResNet initialization so training dynamics are comparable.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "kaiming_normal",
    "kaiming_uniform",
    "xavier_uniform",
    "conv_fans",
    "linear_fans",
]


def conv_fans(weight_shape: tuple[int, int, int, int]) -> tuple[int, int]:
    """``(fan_in, fan_out)`` of a conv weight ``(C_out, C_in, K, K)``."""
    c_out, c_in, kh, kw = weight_shape
    receptive = kh * kw
    return c_in * receptive, c_out * receptive


def linear_fans(weight_shape: tuple[int, int]) -> tuple[int, int]:
    """``(fan_in, fan_out)`` of a linear weight ``(out, in)``."""
    out_features, in_features = weight_shape
    return in_features, out_features


def _fan(shape: tuple[int, ...], mode: str) -> int:
    if len(shape) == 4:
        fan_in, fan_out = conv_fans(shape)  # type: ignore[arg-type]
    elif len(shape) == 2:
        fan_in, fan_out = linear_fans(shape)  # type: ignore[arg-type]
    else:
        raise ValueError(f"cannot infer fans for weight shape {shape}")
    if mode == "fan_in":
        return fan_in
    if mode == "fan_out":
        return fan_out
    raise ValueError(f"unknown fan mode {mode!r}")


def kaiming_normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    mode: str = "fan_out",
    nonlinearity: str = "relu",
) -> np.ndarray:
    """He-normal init: ``N(0, gain^2 / fan)`` with gain sqrt(2) for ReLU."""
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    std = gain / math.sqrt(_fan(shape, mode))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    mode: str = "fan_in",
    nonlinearity: str = "relu",
) -> np.ndarray:
    """He-uniform init: ``U(-b, b)`` with ``b = gain * sqrt(3 / fan)``."""
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    bound = gain * math.sqrt(3.0 / _fan(shape, mode))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init balancing fan-in and fan-out variance."""
    if len(shape) == 4:
        fan_in, fan_out = conv_fans(shape)  # type: ignore[arg-type]
    else:
        fan_in, fan_out = linear_fans(shape)  # type: ignore[arg-type]
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)
