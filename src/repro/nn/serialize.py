"""State-dict serialization to a compact binary container.

The format is a tiny subset of NPZ-like framing: a JSON header describing
tensor names/shapes/dtypes followed by raw little-endian array bytes.  Used
for checkpointing trained trial models; the ONNX-style *model* export (used
for the memory objective) lives in :mod:`repro.onnxlite`.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

import numpy as np

from repro.nn.module import Module

__all__ = ["state_dict_to_bytes", "state_dict_from_bytes", "save_state_dict", "load_state_dict"]

_MAGIC = b"RPSD"
_VERSION = 1


def state_dict_to_bytes(state: dict[str, np.ndarray]) -> bytes:
    """Serialize a state dict to bytes (stable key order)."""
    entries = []
    blobs = []
    offset = 0
    for name in sorted(state):
        array = np.ascontiguousarray(state[name])
        raw = array.tobytes()
        entries.append(
            {
                "name": name,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": len(raw),
            }
        )
        blobs.append(raw)
        offset += len(raw)
    header = json.dumps({"version": _VERSION, "tensors": entries}).encode("utf-8")
    return _MAGIC + struct.pack("<I", len(header)) + header + b"".join(blobs)


def state_dict_from_bytes(payload: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`state_dict_to_bytes`."""
    if payload[:4] != _MAGIC:
        raise ValueError("not a repro state-dict payload (bad magic)")
    (header_len,) = struct.unpack("<I", payload[4:8])
    header = json.loads(payload[8 : 8 + header_len].decode("utf-8"))
    if header.get("version") != _VERSION:
        raise ValueError(f"unsupported state-dict version {header.get('version')}")
    body = payload[8 + header_len :]
    state: dict[str, np.ndarray] = {}
    for entry in header["tensors"]:
        start, nbytes = entry["offset"], entry["nbytes"]
        array = np.frombuffer(body[start : start + nbytes], dtype=np.dtype(entry["dtype"]))
        state[entry["name"]] = array.reshape(entry["shape"]).copy()
    return state


def save_state_dict(module: Module, path: str | Path) -> int:
    """Write a module's state dict to ``path``; returns the byte size."""
    payload = state_dict_to_bytes(module.state_dict())
    Path(path).write_bytes(payload)
    return len(payload)


def load_state_dict(module: Module, path: str | Path) -> None:
    """Load a state dict written by :func:`save_state_dict` into ``module``."""
    module.load_state_dict(state_dict_from_bytes(Path(path).read_bytes()))
