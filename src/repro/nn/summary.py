"""Model introspection: parameter counts and layer summaries (Figure 1)."""

from __future__ import annotations

from repro.nn.module import Module
from repro.utils.tables import render_table

__all__ = ["count_parameters", "model_summary"]


def count_parameters(module: Module, trainable_only: bool = True) -> int:
    """Total number of scalar parameters in the module tree."""
    del trainable_only  # every Parameter is trainable in this library
    return sum(p.size for p in module.parameters())


def model_summary(module: Module) -> str:
    """A per-submodule parameter table, one row per leaf module."""
    rows = []
    for name, sub in module.named_modules():
        if sub._modules:  # only report leaves; containers would double-count
            continue
        params = sum(p.size for p in sub._parameters.values() if p is not None)
        rows.append(
            {
                "module": name or "(root)",
                "type": type(sub).__name__,
                "params": params,
            }
        )
    rows.append({"module": "TOTAL", "type": "", "params": count_parameters(module)})
    return render_table(rows, title=f"{type(module).__name__} summary")
