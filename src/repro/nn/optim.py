"""First-order optimizers: SGD with momentum and Adam.

Update rules follow the PyTorch conventions (momentum buffer ``v = mu*v + g``,
decoupled-from-loss L2 weight decay added to the gradient) so hyperparameters
transfer from the paper's training recipe.

``step`` is allocation-free in steady state: each optimizer keeps one
per-parameter scratch array and performs every update with in-place
ufuncs (``np.multiply(..., out=...)`` etc.), so the optimizer never
contributes to the allocation traffic the training workspace pool
(:mod:`repro.tensor.workspace`) removes from the conv layers.  The
gradient array itself may be mutated by weight decay — it is private to
the step because ``Tensor._accumulate`` always copies, and is discarded
by the following ``zero_grad()``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, params: Sequence[Parameter]) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self._scratch: list[np.ndarray | None] = [None] * len(self.params)

    def _buf(self, i: int) -> np.ndarray:
        """Reusable scratch array shaped like parameter ``i``."""
        buf = self._scratch[i]
        if buf is None:
            buf = np.empty_like(self.params[i].data)
            self._scratch[i] = buf
        return buf

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        """Apply one update; subclasses must override."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum and L2 decay."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            buf = self._buf(i)
            if self.weight_decay:
                # grad += wd * p  (in place on the private gradient copy)
                np.multiply(p.data, self.weight_decay, out=buf)
                grad += buf
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = grad.copy()
                else:
                    v = self._velocity[i]
                    v *= self.momentum
                    v += grad
                grad = self._velocity[i]
            # p -= lr * grad without a temporary.
            np.multiply(grad, self.lr, out=buf)
            p.data -= buf


class Adam(Optimizer):
    """Adam with bias-corrected first/second moments."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            buf = self._buf(i)
            if self.weight_decay:
                np.multiply(p.data, self.weight_decay, out=buf)
                grad += buf
            m, v = self._m[i], self._v[i]
            # m = beta1*m + (1-beta1)*grad
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=buf)
            m += buf
            # v = beta2*v + (1-beta2)*grad^2
            v *= self.beta2
            np.multiply(grad, grad, out=buf)
            buf *= 1.0 - self.beta2
            v += buf
            # p -= lr * (m/bias1) / (sqrt(v/bias2) + eps), staged in `buf`.
            np.divide(v, bias2, out=buf)
            np.sqrt(buf, out=buf)
            buf += self.eps
            np.divide(m, buf, out=buf)
            buf *= self.lr / bias1
            p.data -= buf
