"""Standard layers: convolution, linear, batch norm, pooling, activations."""

from __future__ import annotations

import numpy as np

from repro.nn.init import kaiming_normal
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor import conv_ops
from repro.tensor.tensor import Tensor
from repro.utils.rng import rng_from_seed

__all__ = [
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "ReLU",
    "Dropout",
    "Identity",
    "Flatten",
]


class Conv2d(Module):
    """2-D convolution with square kernels and symmetric padding.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size, stride, padding:
        Uniform spatial geometry.
    bias:
        Whether to add a per-filter bias.  ResNet convs use ``bias=False``
        because a BatchNorm immediately follows.
    rng:
        Seed or generator for weight init (Kaiming-normal, fan-out).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng=None,
    ) -> None:
        super().__init__()
        if in_channels < 1 or out_channels < 1:
            raise ValueError("channel counts must be positive")
        if kernel_size < 1:
            raise ValueError(f"kernel_size must be >= 1, got {kernel_size}")
        generator = rng_from_seed(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(kaiming_normal(shape, generator))
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, bias={self.bias is not None})"
        )


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with weight shape ``(out, in)``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be positive")
        generator = rng_from_seed(rng)
        self.in_features = in_features
        self.out_features = out_features
        bound = 1.0 / np.sqrt(in_features)
        self.weight = Parameter(
            generator.uniform(-bound, bound, size=(out_features, in_features)).astype(np.float32)
        )
        self.bias = (
            Parameter(generator.uniform(-bound, bound, size=out_features).astype(np.float32))
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class BatchNorm2d(Module):
    """Batch normalization over channels of an ``(N, C, H, W)`` tensor."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features < 1:
            raise ValueError("num_features must be positive")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm_2d(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class MaxPool2d(Module):
    """Max pooling with square windows and no padding."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    """Average pooling with square windows and no padding."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be >= 1")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2d(Module):
    """Adaptive average pooling to 1x1: ``(N, C, H, W) -> (N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return conv_ops.global_avg_pool2d(x)

    def __repr__(self) -> str:
        return "GlobalAvgPool2d()"


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode.

    A seeded generator keeps training runs reproducible; each forward in
    training mode consumes fresh randomness from it.
    """

    def __init__(self, p: float = 0.5, rng=None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng_from_seed(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, rng=self._rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Identity(Module):
    """Pass-through (used for the 'no pooling' search-space choice)."""

    def forward(self, x: Tensor) -> Tensor:
        return x

    def __repr__(self) -> str:
        return "Identity()"


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], int(np.prod(x.shape[1:])))

    def __repr__(self) -> str:
        return "Flatten()"
