"""The module system: parameter registration, train/eval mode, state dicts.

Mirrors the (small) subset of ``torch.nn.Module`` semantics the paper's
models require.  Attribute assignment auto-registers parameters, buffers
and submodules, so models read like their PyTorch equivalents.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable model parameter."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses define parameters/buffers/submodules as attributes in
    ``__init__`` and implement :meth:`forward`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_forward_hooks", {})
        object.__setattr__(self, "training", True)

    # -- registration -----------------------------------------------------------

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array saved in the state dict
        (e.g. batch-norm running statistics)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -----------------------------------------------------------------

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` for this module and descendants."""
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        """All modules in the tree (depth-first, self first)."""
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` over the whole tree."""
        for mod_name, module in self.named_modules(prefix):
            for par_name, par in module._parameters.items():
                full = f"{mod_name}.{par_name}" if mod_name else par_name
                yield full, par

    def parameters(self) -> list[Parameter]:
        """All trainable parameters in the tree."""
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(qualified_name, buffer)`` over the whole tree."""
        for mod_name, module in self.named_modules(prefix):
            for buf_name, buf in module._buffers.items():
                full = f"{mod_name}.{buf_name}" if mod_name else buf_name
                yield full, buf

    # -- train/eval ------------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Set train (default) or eval mode recursively."""
        for module in self.modules():
            object.__setattr__(module, "training", bool(mode))
        return self

    def eval(self) -> "Module":
        """Set eval mode recursively."""
        return self.train(False)

    # -- gradients ---------------------------------------------------------------------

    def zero_grad(self) -> None:
        """Clear the gradient of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # -- state dict ---------------------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters and buffers keyed by qualified name."""
        state: dict[str, np.ndarray] = {}
        for name, par in self.named_parameters():
            state[name] = par.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters and buffers in place; shapes must match exactly."""
        own_params = dict(self.named_parameters())
        own_buffers: dict[str, tuple[Module, str]] = {}
        for mod_name, module in self.named_modules():
            for buf_name in module._buffers:
                full = f"{mod_name}.{buf_name}" if mod_name else buf_name
                own_buffers[full] = (module, buf_name)
        expected = set(own_params) | set(own_buffers)
        if set(state) != expected:
            missing = sorted(expected - set(state))
            unexpected = sorted(set(state) - expected)
            raise KeyError(f"state dict mismatch: missing={missing}, unexpected={unexpected}")
        for name, par in own_params.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != par.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} != {par.shape}")
            par.data[...] = value
        for name, (module, buf_name) in own_buffers.items():
            value = np.asarray(state[name])
            buf = module._buffers[buf_name]
            if value.shape != buf.shape:
                raise ValueError(f"shape mismatch for buffer {name}: {value.shape} != {buf.shape}")
            buf[...] = value

    # -- call protocol ---------------------------------------------------------------------

    def forward(self, *args, **kwargs):
        """Compute the module's output; subclasses must override."""
        raise NotImplementedError(f"{type(self).__name__} does not implement forward()")

    def __call__(self, *args, **kwargs):
        out = self.forward(*args, **kwargs)
        for hook in self._forward_hooks.values():
            result = hook(self, args, out)
            if result is not None:
                out = result
        return out

    # -- hooks ------------------------------------------------------------------------

    def register_forward_hook(self, hook) -> "HookHandle":
        """Register ``hook(module, inputs, output)`` to run after forward.

        A hook returning a non-None value replaces the output.  Returns a
        handle whose :meth:`~HookHandle.remove` detaches the hook — used
        by activation observers (quantization calibration, debugging).
        """
        handle = HookHandle(self, len(self._forward_hooks))
        while handle.key in self._forward_hooks:
            handle = HookHandle(self, handle.key + 1)
        self._forward_hooks[handle.key] = hook
        return handle

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class HookHandle:
    """Detachable reference to a registered forward hook."""

    def __init__(self, module: "Module", key: int) -> None:
        self._module = module
        self.key = key

    def remove(self) -> None:
        """Detach the hook (idempotent)."""
        self._module._forward_hooks.pop(self.key, None)


class Sequential(Module):
    """Run submodules in order; ``Sequential(a, b, c)(x) == c(b(a(x)))``."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, module in enumerate(modules):
            setattr(self, str(i), module)

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, x: Tensor) -> Tensor:
        for module in self:
            x = module(x)
        return x
