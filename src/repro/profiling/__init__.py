"""Lightweight per-layer profiling (the Discussion's Nsight substitute)."""

from repro.profiling.profiler import (
    LayerProfiler,
    LayerProfile,
    TrainingStepProfile,
    profile_model,
    profile_training_step,
)
from repro.profiling.report import profile_table, training_profile_table

__all__ = [
    "LayerProfiler",
    "LayerProfile",
    "TrainingStepProfile",
    "profile_model",
    "profile_training_step",
    "profile_table",
    "training_profile_table",
]
