"""Lightweight per-layer profiling (the Discussion's Nsight substitute)."""

from repro.profiling.profiler import LayerProfiler, LayerProfile, profile_model
from repro.profiling.report import profile_table

__all__ = ["LayerProfiler", "LayerProfile", "profile_model", "profile_table"]
