"""Per-layer wall-time and FLOP profiling of a model's forward pass.

The paper's Discussion proposes profiling NNI experiments (with NVIDIA
Nsight) to tune trial counts and the search space; this module provides
the equivalent signal for the NumPy substrate: per-layer wall time, FLOPs
and achieved throughput, collected by running the real forward pass layer
by layer.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.graph.flops import node_flops
from repro.graph.ir import OpType
from repro.graph.trace import trace_model
from repro.nn.resnet import SearchableResNet18
from repro.tensor.tensor import Tensor, no_grad
from repro.tensor.workspace import use_workspaces

__all__ = [
    "LayerProfile",
    "LayerProfiler",
    "profile_model",
    "TrainingStepProfile",
    "profile_training_step",
]


@dataclass(frozen=True)
class LayerProfile:
    """Timing record for one stage of the forward pass."""

    name: str
    seconds: float
    flops: int

    @property
    def gflops_per_s(self) -> float:
        """Achieved throughput."""
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0


class LayerProfiler:
    """Profiles a :class:`SearchableResNet18` stage by stage.

    Stages follow the model's top-level structure (stem, four residual
    stages, head) — the granularity at which the search space varies.
    """

    def __init__(self, model: SearchableResNet18) -> None:
        self.model = model

    def _stages(self):
        m = self.model
        yield "stem", lambda x: m.maxpool(m.relu(m.bn1(m.conv1(x))))
        for i in range(1, 5):
            stage = getattr(m, f"layer{i}")
            yield f"layer{i}", stage
        yield "head", lambda x: m.fc(m.avgpool(x))

    def run(self, x: np.ndarray, repeats: int = 1) -> list[LayerProfile]:
        """Profile a forward pass over input batch ``x``.

        Each stage is timed with ``repeats`` repetitions (best-of to damp
        scheduler noise); FLOPs come from the traced graph so throughput
        is comparable across stages.
        """
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        graph = trace_model(self.model, input_hw=x.shape[2:])
        stage_flops = _flops_by_stage(graph)
        batch = x.shape[0]
        self.model.eval()
        profiles: list[LayerProfile] = []
        with no_grad():
            current = Tensor(x)
            for name, fn in self._stages():
                best = float("inf")
                out = None
                with obs.span("profile.stage", stage=name, repeats=repeats):
                    for _ in range(repeats):
                        begin = time.perf_counter()
                        out = fn(current)
                        best = min(best, time.perf_counter() - begin)
                obs.histogram("repro_profile_stage_seconds", stage=name).observe(best)
                profiles.append(
                    LayerProfile(name=name, seconds=best, flops=stage_flops.get(name, 0) * batch)
                )
                current = out
        return profiles


def _flops_by_stage(graph) -> dict[str, int]:
    """Aggregate per-node FLOPs to the profiler's stage granularity."""
    totals: dict[str, int] = {}
    for node in graph.nodes():
        if node.op in (OpType.INPUT, OpType.OUTPUT):
            continue
        name = node.name
        if name.startswith("layer"):
            stage = name.split(".", 1)[0]
        elif name.startswith(("conv1", "bn1", "relu1", "maxpool")):
            stage = "stem"
        else:
            stage = "head"
        totals[stage] = totals.get(stage, 0) + node_flops(node)
    return totals


def profile_model(
    model: SearchableResNet18,
    batch: int = 4,
    input_hw: tuple[int, int] = (64, 64),
    repeats: int = 2,
    seed: int = 0,
) -> list[LayerProfile]:
    """Convenience wrapper: profile with a random input batch."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(batch, model.in_channels, *input_hw)).astype(np.float32)
    return LayerProfiler(model).run(x, repeats=repeats)


@dataclass(frozen=True)
class TrainingStepProfile:
    """Phase timings + workspace counters of an SGD training loop.

    ``workspace`` holds :meth:`repro.tensor.WorkspacePool.stats` for the
    profiled run (all zeros when profiling with ``workspaces=False``):
    ``misses`` is the number of distinct scratch allocations the pool
    had to make, ``hits`` the number of recycled acquisitions, and
    ``peak_bytes`` the scratch high-water mark of the training step.
    """

    steps: int
    batch: int
    forward_s: float
    backward_s: float
    optimizer_s: float
    workspace: dict[str, int]

    @property
    def total_s(self) -> float:
        """Wall time over all phases."""
        return self.forward_s + self.backward_s + self.optimizer_s

    @property
    def images_per_s(self) -> float:
        """End-to-end training throughput."""
        return self.steps * self.batch / self.total_s if self.total_s > 0 else 0.0


def profile_training_step(
    model,
    batch: int = 4,
    input_hw: tuple[int, int] = (32, 32),
    steps: int = 3,
    seed: int = 0,
    lr: float = 0.01,
    momentum: float = 0.9,
    workspaces: bool = True,
) -> TrainingStepProfile:
    """Time the forward / backward / optimizer phases of real SGD steps.

    The training analogue of :func:`profile_model`: runs ``steps`` full
    train steps (cross-entropy loss on random two-class labels) and
    splits wall time by phase, with the workspace pool's hit/miss/peak
    counters — the signal for judging whether the
    :func:`repro.tensor.use_workspaces` substrate is carrying the conv
    scratch traffic (it should: misses stop growing after step one).
    """
    from repro.nn.loss import CrossEntropyLoss
    from repro.nn.optim import SGD

    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(batch, model.in_channels, *input_hw)).astype(np.float32)
    y = rng.integers(0, 2, size=batch)
    loss_fn = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum)
    model.train()
    forward_s = backward_s = optimizer_s = 0.0
    context = use_workspaces() if workspaces else contextlib.nullcontext()
    with obs.span("profile.train_step", steps=steps, batch=batch), context as pool:
        for _ in range(steps):
            optimizer.zero_grad()
            t0 = time.perf_counter()
            loss = loss_fn(model(Tensor(x)), y)
            t1 = time.perf_counter()
            loss.backward()
            t2 = time.perf_counter()
            optimizer.step()
            t3 = time.perf_counter()
            forward_s += t1 - t0
            backward_s += t2 - t1
            optimizer_s += t3 - t2
        stats = pool.stats() if pool is not None else {
            "hits": 0, "misses": 0, "peak_bytes": 0, "free_bytes": 0, "shapes": 0,
        }
    for phase, seconds in (("forward", forward_s), ("backward", backward_s),
                           ("optimizer", optimizer_s)):
        obs.histogram("repro_train_phase_seconds", phase=phase).observe(seconds)
    return TrainingStepProfile(
        steps=steps,
        batch=batch,
        forward_s=forward_s,
        backward_s=backward_s,
        optimizer_s=optimizer_s,
        workspace=stats,
    )
