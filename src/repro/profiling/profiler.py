"""Per-layer wall-time and FLOP profiling of a model's forward pass.

The paper's Discussion proposes profiling NNI experiments (with NVIDIA
Nsight) to tune trial counts and the search space; this module provides
the equivalent signal for the NumPy substrate: per-layer wall time, FLOPs
and achieved throughput, collected by running the real forward pass layer
by layer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.graph.flops import node_flops
from repro.graph.ir import OpType
from repro.graph.trace import trace_model
from repro.nn.resnet import SearchableResNet18
from repro.tensor.tensor import Tensor, no_grad

__all__ = ["LayerProfile", "LayerProfiler", "profile_model"]


@dataclass(frozen=True)
class LayerProfile:
    """Timing record for one stage of the forward pass."""

    name: str
    seconds: float
    flops: int

    @property
    def gflops_per_s(self) -> float:
        """Achieved throughput."""
        return self.flops / self.seconds / 1e9 if self.seconds > 0 else 0.0


class LayerProfiler:
    """Profiles a :class:`SearchableResNet18` stage by stage.

    Stages follow the model's top-level structure (stem, four residual
    stages, head) — the granularity at which the search space varies.
    """

    def __init__(self, model: SearchableResNet18) -> None:
        self.model = model

    def _stages(self):
        m = self.model
        yield "stem", lambda x: m.maxpool(m.relu(m.bn1(m.conv1(x))))
        for i in range(1, 5):
            stage = getattr(m, f"layer{i}")
            yield f"layer{i}", stage
        yield "head", lambda x: m.fc(m.avgpool(x))

    def run(self, x: np.ndarray, repeats: int = 1) -> list[LayerProfile]:
        """Profile a forward pass over input batch ``x``.

        Each stage is timed with ``repeats`` repetitions (best-of to damp
        scheduler noise); FLOPs come from the traced graph so throughput
        is comparable across stages.
        """
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        graph = trace_model(self.model, input_hw=x.shape[2:])
        stage_flops = _flops_by_stage(graph)
        batch = x.shape[0]
        self.model.eval()
        profiles: list[LayerProfile] = []
        with no_grad():
            current = Tensor(x)
            for name, fn in self._stages():
                best = float("inf")
                out = None
                for _ in range(repeats):
                    begin = time.perf_counter()
                    out = fn(current)
                    best = min(best, time.perf_counter() - begin)
                profiles.append(
                    LayerProfile(name=name, seconds=best, flops=stage_flops.get(name, 0) * batch)
                )
                current = out
        return profiles


def _flops_by_stage(graph) -> dict[str, int]:
    """Aggregate per-node FLOPs to the profiler's stage granularity."""
    totals: dict[str, int] = {}
    for node in graph.nodes():
        if node.op in (OpType.INPUT, OpType.OUTPUT):
            continue
        name = node.name
        if name.startswith("layer"):
            stage = name.split(".", 1)[0]
        elif name.startswith(("conv1", "bn1", "relu1", "maxpool")):
            stage = "stem"
        else:
            stage = "head"
        totals[stage] = totals.get(stage, 0) + node_flops(node)
    return totals


def profile_model(
    model: SearchableResNet18,
    batch: int = 4,
    input_hw: tuple[int, int] = (64, 64),
    repeats: int = 2,
    seed: int = 0,
) -> list[LayerProfile]:
    """Convenience wrapper: profile with a random input batch."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(batch, model.in_channels, *input_hw)).astype(np.float32)
    return LayerProfiler(model).run(x, repeats=repeats)
