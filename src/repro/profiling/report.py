"""Rendering of profiler output."""

from __future__ import annotations

from typing import Sequence

from repro.profiling.profiler import LayerProfile
from repro.utils.tables import render_table
from repro.utils.timing import format_duration

__all__ = ["profile_table"]


def profile_table(profiles: Sequence[LayerProfile], title: str = "Layer profile") -> str:
    """An aligned text table of per-stage time / FLOPs / throughput."""
    total_s = sum(p.seconds for p in profiles) or 1.0
    rows = []
    for p in profiles:
        rows.append(
            {
                "stage": p.name,
                "time": format_duration(p.seconds),
                "share": f"{100.0 * p.seconds / total_s:.1f}%",
                "MFLOPs": round(p.flops / 1e6, 1),
                "GFLOP/s": round(p.gflops_per_s, 2),
            }
        )
    return render_table(rows, title=title)
