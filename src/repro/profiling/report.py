"""Rendering of profiler output."""

from __future__ import annotations

from typing import Sequence

from repro.profiling.profiler import LayerProfile, TrainingStepProfile
from repro.utils.tables import render_table
from repro.utils.timing import format_duration

__all__ = ["profile_table", "training_profile_table"]


def profile_table(profiles: Sequence[LayerProfile], title: str = "Layer profile") -> str:
    """An aligned text table of per-stage time / FLOPs / throughput."""
    total_s = sum(p.seconds for p in profiles) or 1.0
    rows = []
    for p in profiles:
        rows.append(
            {
                "stage": p.name,
                "time": format_duration(p.seconds),
                "share": f"{100.0 * p.seconds / total_s:.1f}%",
                "MFLOPs": round(p.flops / 1e6, 1),
                "GFLOP/s": round(p.gflops_per_s, 2),
            }
        )
    return render_table(rows, title=title)


def training_profile_table(profile: TrainingStepProfile, title: str = "Training step profile") -> str:
    """Phase breakdown + workspace counters of one profiled training run."""
    total = profile.total_s or 1.0
    rows = []
    for phase, seconds in (
        ("forward", profile.forward_s),
        ("backward", profile.backward_s),
        ("optimizer", profile.optimizer_s),
    ):
        rows.append(
            {
                "phase": phase,
                "time": format_duration(seconds),
                "share": f"{100.0 * seconds / total:.1f}%",
            }
        )
    ws = profile.workspace
    footer = (
        f"{profile.images_per_s:.1f} images/s | workspace: {ws['hits']} hits, "
        f"{ws['misses']} misses, peak {ws['peak_bytes'] / 1e6:.2f} MB"
    )
    return render_table(rows, title=title) + "\n" + footer
