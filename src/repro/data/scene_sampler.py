"""Region-scale scene synthesis and patch extraction.

The paper builds its dataset by segmenting drainage-crossing objects out
of watershed-scale HRDEMs and sampling negative patches by random spatial
sampling (Section 2.1).  :class:`DrainageCrossingDataset` shortcuts this
by generating one scene per patch; this module reproduces the *actual*
data-build workflow:

1. synthesize a large region raster with a drainage network (several
   meandering channels) and a road network (several embankments);
2. detect every channel-road crossing (the segmentation step) as ground
   truth;
3. cut positive patches centered near crossings and negative patches by
   rejection-sampled random locations away from any crossing.

Everything stays vectorized: channels/roads are rasterized with the same
distance-field profiles as :mod:`repro.data.terrain`, and crossing
detection is a mask intersection + connected-component centroid pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.data.orthophoto import render_orthophoto
from repro.data.terrain import Scene, TerrainParams, _meander, synthesize_dem
from repro.data.indices import ndvi, ndwi

__all__ = ["RegionScene", "generate_region_scene", "detect_crossings", "sample_patches", "build_scene_dataset"]


@dataclass
class RegionScene:
    """A watershed-scale synthetic raster with ground truth.

    ``crossings`` are (row, col) centroids of channel-road intersections —
    the objects the paper's segmentation step extracts.
    """

    dem: np.ndarray
    channel_mask: np.ndarray
    road_mask: np.ndarray
    water_mask: np.ndarray
    ortho: np.ndarray  # (4, H, W): red, green, blue, nir
    crossings: list[tuple[int, int]] = field(default_factory=list)

    @property
    def size(self) -> int:
        return self.dem.shape[0]

    def channel_stack(self, channels: int = 5) -> np.ndarray:
        """The model-facing raster: DEM + bands (+ NDVI/NDWI for 7)."""
        if channels not in (5, 7):
            raise ValueError(f"channels must be 5 or 7, got {channels}")
        dem = (self.dem - self.dem.mean()) / (self.dem.std() + 1e-6)
        stack = [dem[None], self.ortho]
        if channels == 7:
            red, green, _blue, nir = self.ortho
            stack.append(ndvi(nir, red)[None])
            stack.append(ndwi(green, nir)[None])
        return np.concatenate(stack, axis=0).astype(np.float32)


def _rasterize_channel(size: int, rng: np.random.Generator, params: TerrainParams) -> tuple[np.ndarray, np.ndarray]:
    """One horizontal meandering channel: (depth field, mask)."""
    center = rng.uniform(0.15, 0.85) * size
    path = np.clip(center + _meander(size, rng, n_waves=4), 2, size - 3)
    rows = np.arange(size)[:, None]
    dist = np.abs(rows - path[None, :])
    depth = params.channel_depth * np.exp(-0.5 * (dist / params.channel_width) ** 2)
    return depth.astype(np.float32), depth > 0.35 * params.channel_depth


def _rasterize_road(size: int, rng: np.random.Generator, params: TerrainParams) -> tuple[np.ndarray, np.ndarray]:
    """One roughly vertical road embankment: (height field, mask)."""
    center = rng.uniform(0.15, 0.85) * size
    slope = rng.uniform(-0.25, 0.25)
    rows = np.arange(size)
    path = np.clip(center + slope * (rows - size / 2.0), 2, size - 3)
    cols = np.arange(size)[None, :]
    dist = np.abs(cols - path[:, None])
    half = params.road_width / 2.0
    shoulders = np.clip((dist - half / 2.0) / half, 0.0, 1.0)
    height = params.road_height * 0.5 * (1.0 + np.cos(np.pi * shoulders))
    height[dist > 1.5 * half] = 0.0
    return height.astype(np.float32), height > 0.35 * params.road_height


def detect_crossings(channel_mask: np.ndarray, road_mask: np.ndarray) -> list[tuple[int, int]]:
    """Centroids of connected channel-road intersection regions.

    This is the reproduction's 'object segmentation': each connected
    overlap blob is one culvert candidate.
    """
    overlap = channel_mask & road_mask
    labeled, count = ndimage.label(overlap)
    if count == 0:
        return []
    centroids = ndimage.center_of_mass(overlap, labeled, index=range(1, count + 1))
    return [(int(round(r)), int(round(c))) for r, c in centroids]


def generate_region_scene(
    size: int,
    rng: np.random.Generator,
    params: TerrainParams,
    n_channels: int = 3,
    n_roads: int = 3,
) -> RegionScene:
    """Synthesize a region raster with drainage and road networks."""
    if size < 64:
        raise ValueError(f"region scenes need size >= 64, got {size}")
    if n_channels < 0 or n_roads < 0:
        raise ValueError("feature counts must be non-negative")
    dem = synthesize_dem(size, rng, params)
    channel_mask = np.zeros((size, size), dtype=bool)
    road_mask = np.zeros((size, size), dtype=bool)
    for _ in range(n_channels):
        depth, mask = _rasterize_channel(size, rng, params)
        dem = dem - depth
        channel_mask |= mask
    for _ in range(n_roads):
        height, mask = _rasterize_road(size, rng, params)
        dem = dem + height  # embankments fill over channels: culverts
        road_mask |= mask

    if channel_mask.any():
        open_channel = channel_mask & ~road_mask
        if open_channel.any():
            threshold = np.percentile(dem[open_channel], 35)
            water_mask = open_channel & (dem < threshold)
        else:
            water_mask = np.zeros_like(channel_mask)
    else:
        water_mask = np.zeros_like(channel_mask)

    scene_view = Scene(dem=dem.astype(np.float32), channel_mask=channel_mask,
                       road_mask=road_mask, water_mask=water_mask, has_crossing=False)
    ortho = render_orthophoto(scene_view, rng)
    return RegionScene(
        dem=dem.astype(np.float32),
        channel_mask=channel_mask,
        road_mask=road_mask,
        water_mask=water_mask,
        ortho=ortho,
        crossings=detect_crossings(channel_mask, road_mask),
    )


def sample_patches(
    scene: RegionScene,
    patch: int,
    rng: np.random.Generator,
    n_positive: int | None = None,
    n_negative: int | None = None,
    exclusion_radius: float | None = None,
    channels: int = 5,
    jitter: int = 4,
    max_attempts: int = 2000,
) -> tuple[np.ndarray, np.ndarray, list[tuple[int, int]]]:
    """Cut positive/negative patches from a region scene.

    Positives are centered on detected crossings (with a small random
    jitter, as real segmentation boxes are not pixel-perfect); negatives
    are random locations at least ``exclusion_radius`` cells from any
    crossing — the paper's 'random spatial sampling'.

    Returns
    -------
    (X, y, centers):
        ``X`` of shape ``(n, channels, patch, patch)``, labels ``y``,
        and the patch centers used.
    """
    if patch < 8 or patch > scene.size:
        raise ValueError(f"patch size {patch} invalid for scene of size {scene.size}")
    stack = scene.channel_stack(channels)
    half = patch // 2
    lo, hi = half, scene.size - half
    if lo >= hi:
        raise ValueError("patch is too large for the scene")
    exclusion = exclusion_radius if exclusion_radius is not None else patch / 2.0

    usable = [(r, c) for r, c in scene.crossings if lo <= r < hi and lo <= c < hi]
    if n_positive is None:
        n_positive = len(usable)
    if n_positive > 0 and not usable:
        raise ValueError("scene contains no usable crossings for positive patches")
    if n_negative is None:
        n_negative = n_positive

    patches: list[np.ndarray] = []
    labels: list[int] = []
    centers: list[tuple[int, int]] = []

    for i in range(n_positive):
        r, c = usable[i % len(usable)]
        r = int(np.clip(r + rng.integers(-jitter, jitter + 1), lo, hi - 1))
        c = int(np.clip(c + rng.integers(-jitter, jitter + 1), lo, hi - 1))
        patches.append(stack[:, r - half : r - half + patch, c - half : c - half + patch])
        labels.append(1)
        centers.append((r, c))

    crossing_array = np.array(scene.crossings, dtype=float) if scene.crossings else np.zeros((0, 2))
    produced = 0
    for _ in range(max_attempts):
        if produced >= n_negative:
            break
        r = int(rng.integers(lo, hi))
        c = int(rng.integers(lo, hi))
        if crossing_array.size:
            distances = np.hypot(crossing_array[:, 0] - r, crossing_array[:, 1] - c)
            if distances.min() < exclusion:
                continue
        patches.append(stack[:, r - half : r - half + patch, c - half : c - half + patch])
        labels.append(0)
        centers.append((r, c))
        produced += 1
    if produced < n_negative:
        raise RuntimeError(
            f"could only place {produced}/{n_negative} negatives outside the exclusion zones"
        )

    x = np.stack(patches) if patches else np.zeros((0, channels, patch, patch), dtype=np.float32)
    return x.astype(np.float32), np.array(labels, dtype=np.int64), centers


def build_scene_dataset(
    params: TerrainParams,
    scene_size: int = 400,
    patch: int = 64,
    n_scenes: int = 2,
    channels: int = 5,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """A balanced (X, y) dataset cut from several region scenes."""
    xs, ys = [], []
    for scene_idx in range(n_scenes):
        rng = np.random.default_rng(seed + 7919 * scene_idx)
        scene = generate_region_scene(scene_size, rng, params)
        if not scene.crossings:
            continue
        x, y, _ = sample_patches(scene, patch, rng, channels=channels)
        xs.append(x)
        ys.append(y)
    if not xs:
        raise RuntimeError("no scene produced any crossings; increase n_scenes or feature counts")
    return np.concatenate(xs), np.concatenate(ys)
