"""Spectral indices from the paper (Eqs. 1 and 2).

.. math::

    NDVI = (NIR - RED) / (NIR + RED)

    NDWI = (GREEN - NIR) / (GREEN + NIR)

Both are bounded in [-1, 1]; a small epsilon guards against zero
denominators on fully dark pixels.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ndvi", "ndwi"]

_EPS = 1e-6


def ndvi(nir: np.ndarray, red: np.ndarray) -> np.ndarray:
    """Normalized Difference Vegetation Index (paper Eq. 1)."""
    nir = np.asarray(nir, dtype=np.float32)
    red = np.asarray(red, dtype=np.float32)
    return ((nir - red) / (nir + red + _EPS)).astype(np.float32)


def ndwi(green: np.ndarray, nir: np.ndarray) -> np.ndarray:
    """Normalized Difference Water Index (paper Eq. 2, McFeeters 1996)."""
    green = np.asarray(green, dtype=np.float32)
    nir = np.asarray(nir, dtype=np.float32)
    return ((green - nir) / (green + nir + _EPS)).astype(np.float32)
