"""The four study regions of paper Table 1.

Sample counts and provenance strings reproduce Table 1 exactly; terrain
parameters encode each region's physiographic character (Nebraska and
Illinois till plains are smooth and low-relief, North Dakota's Maple River
valley slightly rougher, California's Sacramento Valley margin the most
dissected), so synthesized scenes differ across regions the way the real
watersheds do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.terrain import TerrainParams

__all__ = ["Region", "REGIONS", "total_sample_count", "region_by_name"]


@dataclass(frozen=True)
class Region:
    """One study region: Table-1 metadata plus terrain character."""

    name: str
    dem_source: str
    dem_resolution_m: float
    true_samples: int
    false_samples: int
    ortho_source: str
    terrain: TerrainParams

    @property
    def total_samples(self) -> int:
        """True + false sample count (Table 1 'Total sample')."""
        return self.true_samples + self.false_samples


_NAIP = "USGS National Agriculture Imagery Program (NAIP) (1m resolution)"

REGIONS: dict[str, Region] = {
    "nebraska": Region(
        name="Nebraska",
        dem_source="Nebraska Department of Natural Resource",
        dem_resolution_m=1.0,
        true_samples=2022,
        false_samples=2022,
        ortho_source=_NAIP,
        terrain=TerrainParams(relief=2.0, beta=2.6, tilt=1.0, channel_depth=1.8,
                              channel_width=4.0, road_height=1.4, road_width=5.0),
    ),
    "illinois": Region(
        name="Illinois",
        dem_source="Illinois Geospatial Data Clearinghouse",
        dem_resolution_m=0.3,
        true_samples=1011,
        false_samples=1011,
        ortho_source=_NAIP,
        terrain=TerrainParams(relief=2.5, beta=2.5, tilt=1.2, channel_depth=2.2,
                              channel_width=4.5, road_height=1.5, road_width=5.5),
    ),
    "north_dakota": Region(
        name="North Dakota",
        dem_source="North Dakota GIS Hub Data Portal",
        dem_resolution_m=0.61,
        true_samples=613,
        false_samples=613,
        ortho_source=_NAIP,
        terrain=TerrainParams(relief=3.0, beta=2.3, tilt=1.5, channel_depth=2.0,
                              channel_width=3.5, road_height=1.6, road_width=5.0),
    ),
    "california": Region(
        name="California",
        dem_source="USGS",
        dem_resolution_m=1.0,
        true_samples=2388,
        false_samples=2388,
        ortho_source=_NAIP,
        terrain=TerrainParams(relief=5.0, beta=2.0, tilt=2.5, channel_depth=2.5,
                              channel_width=4.0, road_height=1.8, road_width=6.0),
    ),
}


def region_by_name(name: str) -> Region:
    """Case-insensitive region lookup by key or display name."""
    key = name.strip().lower().replace(" ", "_")
    if key in REGIONS:
        return REGIONS[key]
    raise KeyError(f"unknown region {name!r}; known: {sorted(REGIONS)}")


def total_sample_count() -> int:
    """Total dataset size across all regions (paper: 12,068)."""
    return sum(region.total_samples for region in REGIONS.values())
