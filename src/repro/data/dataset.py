"""Patch datasets for the drainage-crossing classification task.

A sample is a ``(C, H, W)`` float32 patch with C = 5 (DEM, R, G, B, NIR)
or C = 7 (+ NDVI, NDWI), labeled 1 if it contains a drainage crossing.
Generation is deterministic per ``(seed, region, label, index)``, so a
dataset is fully defined by its spec and can be regenerated identically by
any worker process.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.indices import ndvi, ndwi
from repro.data.orthophoto import render_orthophoto
from repro.data.regions import REGIONS, Region
from repro.data.terrain import generate_scene
from repro.utils.rng import SeedSequenceFactory

__all__ = ["generate_patch", "DrainageCrossingDataset", "make_paper_dataset", "CHANNEL_NAMES_5", "CHANNEL_NAMES_7"]

CHANNEL_NAMES_5 = ("dem", "red", "green", "blue", "nir")
CHANNEL_NAMES_7 = CHANNEL_NAMES_5 + ("ndvi", "ndwi")


def generate_patch(
    region: Region,
    label: int,
    rng: np.random.Generator,
    size: int = 100,
    channels: int = 5,
) -> np.ndarray:
    """Synthesize one ``(channels, size, size)`` patch.

    The DEM channel is standardized per patch (HRDEM absolute elevations
    carry no class information); spectral bands stay as reflectances.
    """
    if channels not in (5, 7):
        raise ValueError(f"channels must be 5 or 7, got {channels}")
    scene = generate_scene(size, rng, region.terrain, crossing=bool(label))
    ortho = render_orthophoto(scene, rng)
    dem = scene.dem
    dem = (dem - dem.mean()) / (dem.std() + 1e-6)
    stack = [dem[None], ortho]
    if channels == 7:
        red, green, _blue, nir = ortho
        stack.append(ndvi(nir, red)[None])
        stack.append(ndwi(green, nir)[None])
    return np.concatenate(stack, axis=0).astype(np.float32)


@dataclass
class _SampleSpec:
    region_key: str
    label: int
    index: int


class DrainageCrossingDataset:
    """A deterministic, lazily generated patch dataset.

    Parameters
    ----------
    channels:
        5 or 7 input channels (the paper's two input variants).
    size:
        Patch edge length in cells (paper patches are 100x100 at ~1 m).
    samples_per_class:
        Per-region cap on each class; ``None`` uses the full Table-1
        counts (12,068 samples) — tests and examples pass small values.
    regions:
        Region keys to include; defaults to all four.
    seed:
        Root seed; every sample derives its own stream from it.
    cache:
        Keep generated patches in memory (speeds up multi-epoch training
        at the cost of ``4 * C * size^2`` bytes per sample).
    """

    def __init__(
        self,
        channels: int = 5,
        size: int = 100,
        samples_per_class: int | None = None,
        regions: list[str] | None = None,
        seed: int = 0,
        cache: bool = True,
    ) -> None:
        if channels not in (5, 7):
            raise ValueError(f"channels must be 5 or 7, got {channels}")
        self.channels = channels
        self.size = size
        self.seed = seed
        self._seeds = SeedSequenceFactory(seed)
        self._cache: dict[int, np.ndarray] | None = {} if cache else None

        region_keys = regions if regions is not None else list(REGIONS)
        self._specs: list[_SampleSpec] = []
        for key in region_keys:
            region = REGIONS[key]
            n_true = region.true_samples if samples_per_class is None else min(samples_per_class, region.true_samples)
            n_false = region.false_samples if samples_per_class is None else min(samples_per_class, region.false_samples)
            for i in range(n_true):
                self._specs.append(_SampleSpec(key, 1, i))
            for i in range(n_false):
                self._specs.append(_SampleSpec(key, 0, i))
        if not self._specs:
            raise ValueError("dataset is empty (no regions or zero samples per class)")
        self.labels = np.array([s.label for s in self._specs], dtype=np.int64)

    def __len__(self) -> int:
        return len(self._specs)

    def patch(self, index: int) -> np.ndarray:
        """The ``(C, H, W)`` patch for sample ``index``."""
        if self._cache is not None and index in self._cache:
            return self._cache[index]
        spec = self._specs[index]
        rng = self._seeds.rng("sample", spec.region_key, spec.label, spec.index)
        data = generate_patch(REGIONS[spec.region_key], spec.label, rng, size=self.size, channels=self.channels)
        if self._cache is not None:
            self._cache[index] = data
        return data

    def __getitem__(self, index: int) -> tuple[np.ndarray, int]:
        return self.patch(index), int(self.labels[index])

    def batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Stack the given samples into ``(X, y)`` arrays."""
        x = np.stack([self.patch(int(i)) for i in indices])
        y = self.labels[np.asarray(indices)]
        return x, y

    def class_counts(self) -> dict[int, int]:
        """Samples per class over the whole dataset."""
        values, counts = np.unique(self.labels, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}

    def region_counts(self) -> dict[str, int]:
        """Samples per region key."""
        counts: dict[str, int] = {}
        for spec in self._specs:
            counts[spec.region_key] = counts.get(spec.region_key, 0) + 1
        return counts


def make_paper_dataset(channels: int = 5, seed: int = 0, cache: bool = False) -> DrainageCrossingDataset:
    """The full 12,068-sample dataset with the paper's Table-1 counts."""
    return DrainageCrossingDataset(channels=channels, size=100, samples_per_class=None, seed=seed, cache=cache)
