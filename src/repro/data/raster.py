"""Georeferenced raster container (GeoTIFF stand-in).

The paper's artifacts ship clipped HRDEM/orthophoto rasters; this module
provides the equivalent persistence layer for synthetic scenes: a binary
multi-band raster with an affine geotransform and a CRS string, so region
scenes can be written to disk, re-tiled, and shared between the data
pipeline stages exactly as the paper's step0 notebooks do with GeoTIFFs.

Format::

    RRST | u32 version | u32 header_len | header JSON | float32 band data
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["GeoTransform", "Raster", "save_raster", "load_raster"]

_MAGIC = b"RRST"
_VERSION = 1


@dataclass(frozen=True)
class GeoTransform:
    """Affine pixel->world mapping (GDAL's 6-coefficient convention)."""

    origin_x: float = 0.0
    origin_y: float = 0.0
    pixel_width: float = 1.0
    pixel_height: float = -1.0  # north-up rasters have negative dy
    shear_x: float = 0.0
    shear_y: float = 0.0

    def pixel_to_world(self, row: float, col: float) -> tuple[float, float]:
        """World coordinates of a (row, col) pixel center."""
        x = self.origin_x + col * self.pixel_width + row * self.shear_x
        y = self.origin_y + col * self.shear_y + row * self.pixel_height
        return x, y

    def world_to_pixel(self, x: float, y: float) -> tuple[float, float]:
        """Fractional (row, col) of a world coordinate (no shear support)."""
        if self.shear_x or self.shear_y:
            raise NotImplementedError("world_to_pixel with shear is not supported")
        col = (x - self.origin_x) / self.pixel_width
        row = (y - self.origin_y) / self.pixel_height
        return row, col

    def as_tuple(self) -> tuple[float, ...]:
        return (self.origin_x, self.origin_y, self.pixel_width,
                self.pixel_height, self.shear_x, self.shear_y)


@dataclass
class Raster:
    """A multi-band float32 raster with georeferencing metadata."""

    data: np.ndarray  # (bands, H, W)
    transform: GeoTransform = field(default_factory=GeoTransform)
    crs: str = "EPSG:32614"  # UTM 14N, covering the Nebraska study region
    band_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.data = np.ascontiguousarray(self.data, dtype=np.float32)
        if self.data.ndim == 2:
            self.data = self.data[None]
        if self.data.ndim != 3:
            raise ValueError(f"raster data must be (bands, H, W), got shape {self.data.shape}")
        if self.band_names and len(self.band_names) != self.data.shape[0]:
            raise ValueError(
                f"{len(self.band_names)} band names for {self.data.shape[0]} bands"
            )

    @property
    def bands(self) -> int:
        return self.data.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        """(H, W) spatial shape."""
        return self.data.shape[1], self.data.shape[2]

    def band(self, name: str) -> np.ndarray:
        """Look up one band by name."""
        if name not in self.band_names:
            raise KeyError(f"no band named {name!r}; bands: {self.band_names}")
        return self.data[self.band_names.index(name)]

    def window(self, row: int, col: int, size: int) -> "Raster":
        """A square sub-raster with an adjusted geotransform."""
        h, w = self.shape
        if not (0 <= row and row + size <= h and 0 <= col and col + size <= w):
            raise ValueError(f"window ({row}, {col}, {size}) exceeds raster of shape {self.shape}")
        x, y = self.transform.pixel_to_world(row, col)
        sub_transform = GeoTransform(
            origin_x=x, origin_y=y,
            pixel_width=self.transform.pixel_width,
            pixel_height=self.transform.pixel_height,
        )
        return Raster(
            data=self.data[:, row : row + size, col : col + size].copy(),
            transform=sub_transform,
            crs=self.crs,
            band_names=self.band_names,
        )


def save_raster(raster: Raster, path: str | Path) -> int:
    """Write a raster container; returns the byte size."""
    header = {
        "bands": raster.bands,
        "height": raster.shape[0],
        "width": raster.shape[1],
        "transform": list(raster.transform.as_tuple()),
        "crs": raster.crs,
        "band_names": list(raster.band_names),
    }
    header_bytes = json.dumps(header).encode("utf-8")
    blob = (
        _MAGIC
        + struct.pack("<II", _VERSION, len(header_bytes))
        + header_bytes
        + raster.data.tobytes()
    )
    Path(path).write_bytes(blob)
    return len(blob)


def load_raster(path: str | Path) -> Raster:
    """Read a raster container written by :func:`save_raster`."""
    blob = Path(path).read_bytes()
    if blob[:4] != _MAGIC:
        raise ValueError("not a raster container (bad magic)")
    version, header_len = struct.unpack("<II", blob[4:12])
    if version != _VERSION:
        raise ValueError(f"unsupported raster version {version}")
    header = json.loads(blob[12 : 12 + header_len].decode("utf-8"))
    count = header["bands"] * header["height"] * header["width"]
    data = np.frombuffer(blob[12 + header_len :], dtype=np.float32, count=count)
    data = data.reshape(header["bands"], header["height"], header["width"]).copy()
    t = header["transform"]
    return Raster(
        data=data,
        transform=GeoTransform(*t),
        crs=header["crs"],
        band_names=tuple(header["band_names"]),
    )
