"""Minibatch iteration over a dataset."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import DrainageCrossingDataset
from repro.utils.rng import rng_from_seed

__all__ = ["BatchSampler"]


class BatchSampler:
    """Yield ``(X, y)`` minibatches, optionally shuffled each epoch.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Samples per batch (the paper searches over 8/16/32).
    indices:
        Restrict iteration to a subset (used by the k-fold evaluator);
        defaults to the whole dataset.
    shuffle:
        Re-permute indices at the start of every iteration.
    drop_last:
        Drop a trailing partial batch (keeps batch-norm statistics stable
        for tiny folds).
    rng:
        Seed or generator driving the shuffles.
    """

    def __init__(
        self,
        dataset: DrainageCrossingDataset,
        batch_size: int,
        indices: np.ndarray | None = None,
        shuffle: bool = True,
        drop_last: bool = False,
        rng=None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.indices = np.arange(len(dataset)) if indices is None else np.asarray(indices, dtype=np.int64)
        if self.indices.size == 0:
            raise ValueError("sampler received an empty index set")
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng_from_seed(rng)

    def __len__(self) -> int:
        """Number of batches per epoch."""
        full, rem = divmod(self.indices.size, self.batch_size)
        return full if (self.drop_last or rem == 0) else full + 1

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        order = self.indices
        if self.shuffle:
            order = self._rng.permutation(order)
        stop = (order.size // self.batch_size) * self.batch_size if self.drop_last else order.size
        for start in range(0, stop, self.batch_size):
            chunk = order[start : start + self.batch_size]
            if chunk.size:
                yield self.dataset.batch(chunk)
