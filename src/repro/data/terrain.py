"""Procedural HRDEM synthesis with drainage channels and road embankments.

The generator composes three vectorized stages:

1. **Base terrain** — spectral synthesis: white noise shaped by a
   power-law amplitude spectrum ``|A(f)| ~ f^(-beta/2)`` (fractal surfaces;
   larger beta = smoother, lowland terrain), plus a regional tilt.
2. **Drainage channel** — a meandering path carved as a Gaussian-profile
   depression; the meander is a sum of random sinusoids, so each sample's
   channel geometry is unique but smooth.
3. **Road embankment** — a raised prism crossing the patch; where a road
   crosses a channel the embankment *fills over* the channel, producing the
   culvert signature (channel interrupted by fill) that defines a positive
   drainage-crossing sample, exactly the feature Wu et al. [38] detect.

Everything operates on whole arrays; there are no per-pixel Python loops.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TerrainParams", "synthesize_dem", "channel_profile", "road_profile", "generate_scene", "Scene"]


@dataclass(frozen=True)
class TerrainParams:
    """Region-level terrain character.

    Attributes
    ----------
    relief:
        Peak-to-trough amplitude of the base terrain in meters.
    beta:
        Spectral slope; ~1.8 for rough uplands, ~2.6 for smooth plains.
    tilt:
        Maximum regional gradient in meters across the patch.
    channel_depth / channel_width:
        Carved channel depth (m) and Gaussian width (cells).
    road_height / road_width:
        Embankment height (m) and width (cells).
    """

    relief: float = 3.0
    beta: float = 2.2
    tilt: float = 1.5
    channel_depth: float = 2.0
    channel_width: float = 4.0
    road_height: float = 1.5
    road_width: float = 5.0


def synthesize_dem(size: int, rng: np.random.Generator, params: TerrainParams) -> np.ndarray:
    """Generate a ``size x size`` float32 base DEM (meters).

    Spectral synthesis: shape Fourier-domain white noise by ``f^(-beta/2)``,
    inverse-transform, normalize to the requested relief, add a random
    linear tilt.
    """
    if size < 8:
        raise ValueError(f"DEM size must be >= 8 cells, got {size}")
    fy = np.fft.fftfreq(size)[:, None]
    fx = np.fft.rfftfreq(size)[None, :]
    freq = np.hypot(fy, fx)
    freq[0, 0] = np.inf  # kill the DC term
    amplitude = freq ** (-params.beta / 2.0)
    phase = rng.uniform(0.0, 2.0 * np.pi, size=amplitude.shape)
    spectrum = amplitude * np.exp(1j * phase)
    surface = np.fft.irfft2(spectrum, s=(size, size))
    span = surface.max() - surface.min()
    if span > 0:
        surface = (surface - surface.min()) / span * params.relief
    # Random regional tilt (plains still drain somewhere).
    direction = rng.uniform(0.0, 2.0 * np.pi)
    yy, xx = np.mgrid[0:size, 0:size] / max(size - 1, 1)
    surface = surface + params.tilt * (np.cos(direction) * xx + np.sin(direction) * yy)
    return surface.astype(np.float32)


def _meander(size: int, rng: np.random.Generator, n_waves: int = 3) -> np.ndarray:
    """A smooth meandering center-line offset, one value per column."""
    t = np.linspace(0.0, 1.0, size)
    offset = np.zeros(size)
    for k in range(1, n_waves + 1):
        amp = rng.uniform(0.0, size / (8.0 * k))
        phase = rng.uniform(0.0, 2.0 * np.pi)
        offset += amp * np.sin(2.0 * np.pi * k * t + phase)
    return offset


def channel_profile(
    size: int, rng: np.random.Generator, params: TerrainParams
) -> tuple[np.ndarray, np.ndarray]:
    """Carve signature of a meandering channel.

    Returns
    -------
    depth:
        ``(size, size)`` array of depths to *subtract* from the DEM.
    centerline:
        Row index of the channel center for each column (float array).
    """
    center = size / 2.0 + rng.uniform(-size / 6.0, size / 6.0)
    path = np.clip(center + _meander(size, rng), 2, size - 3)
    rows = np.arange(size)[:, None]
    dist = np.abs(rows - path[None, :])
    depth = params.channel_depth * np.exp(-0.5 * (dist / params.channel_width) ** 2)
    return depth.astype(np.float32), path


def road_profile(
    size: int, rng: np.random.Generator, params: TerrainParams
) -> tuple[np.ndarray, np.ndarray]:
    """Raise signature of a (roughly vertical) road embankment.

    Returns
    -------
    height:
        ``(size, size)`` array of heights to *add* to the DEM.
    centerline:
        Column index of the road center for each row (float array).
    """
    center = size / 2.0 + rng.uniform(-size / 6.0, size / 6.0)
    slope = rng.uniform(-0.3, 0.3)
    rows = np.arange(size)
    path = np.clip(center + slope * (rows - size / 2.0), 2, size - 3)
    cols = np.arange(size)[None, :]
    dist = np.abs(cols - path[:, None])
    # Flat-topped embankment: plateau half the width, cosine shoulders.
    half = params.road_width / 2.0
    shoulders = np.clip((dist - half / 2.0) / half, 0.0, 1.0)
    height = params.road_height * 0.5 * (1.0 + np.cos(np.pi * shoulders))
    height[dist > 1.5 * half] = 0.0
    return height.astype(np.float32), path


@dataclass
class Scene:
    """A synthesized scene and its ground-truth masks.

    ``dem`` is the final elevation raster; the masks drive orthophoto
    rendering and give tests checkable invariants.
    """

    dem: np.ndarray
    channel_mask: np.ndarray
    road_mask: np.ndarray
    water_mask: np.ndarray
    has_crossing: bool


def generate_scene(
    size: int,
    rng: np.random.Generator,
    params: TerrainParams,
    crossing: bool,
) -> Scene:
    """Generate one labeled scene.

    Positive scenes (``crossing=True``) contain a channel *and* a road
    whose embankment fills over it near their intersection.  Negative
    scenes are a random spatial sample, mirroring the paper's negatives:
    empty terrain, channel only, or road only (chosen at random) — never
    both together, so the crossing signature itself is what separates the
    classes rather than mere object presence.
    """
    dem = synthesize_dem(size, rng, params)
    channel_mask = np.zeros((size, size), dtype=bool)
    road_mask = np.zeros((size, size), dtype=bool)

    if crossing:
        want_channel, want_road = True, True
    else:
        kind = rng.integers(0, 3)  # 0: empty, 1: channel only, 2: road only
        want_channel, want_road = kind == 1, kind == 2

    if want_channel:
        depth, _ = channel_profile(size, rng, params)
        dem = dem - depth
        channel_mask = depth > 0.35 * params.channel_depth

    if want_road:
        height, _ = road_profile(size, rng, params)
        if crossing:
            # Culvert: the embankment fills over the channel, interrupting
            # it — the defining HRDEM signature of a drainage crossing.
            dem = np.maximum(dem, dem + height) if not want_channel else dem + height
        else:
            dem = dem + height
        road_mask = height > 0.35 * params.road_height

    # Water collects in the deepest channel cells (used by NDWI rendering).
    if want_channel:
        channel_floor = channel_mask & (dem < np.percentile(dem[channel_mask], 35))
        water_mask = channel_floor & ~road_mask
    else:
        water_mask = np.zeros((size, size), dtype=bool)

    return Scene(
        dem=dem.astype(np.float32),
        channel_mask=channel_mask,
        road_mask=road_mask,
        water_mask=water_mask,
        has_crossing=bool(crossing),
    )
