"""K-fold and train/test index splitting (paper Section 3.2 evaluation).

The paper evaluates every NAS trial with 5-fold cross-validation; these
helpers produce the disjoint, exhaustive index partitions that protocol
needs.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import rng_from_seed

__all__ = ["kfold_indices", "train_test_split_indices"]


def kfold_indices(n: int, k: int = 5, seed: int | None = 0) -> list[tuple[np.ndarray, np.ndarray]]:
    """Split ``range(n)`` into ``k`` (train, validation) folds.

    Folds are disjoint, cover all indices, and differ in size by at most
    one element.  ``seed=None`` keeps natural order (no shuffle).
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if n < k:
        raise ValueError(f"cannot make {k} folds from {n} samples")
    order = np.arange(n) if seed is None else rng_from_seed(seed).permutation(n)
    fold_sizes = np.full(k, n // k, dtype=np.int64)
    fold_sizes[: n % k] += 1
    splits: list[tuple[np.ndarray, np.ndarray]] = []
    start = 0
    for size in fold_sizes:
        val = order[start : start + size]
        train = np.concatenate([order[:start], order[start + size :]])
        splits.append((train, val))
        start += size
    return splits


def train_test_split_indices(n: int, test_fraction: float = 0.2, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A single shuffled (train, test) index split."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    order = rng_from_seed(seed).permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise ValueError(f"test fraction {test_fraction} leaves no training data for n={n}")
    return order[n_test:], order[:n_test]
