"""Synthetic aerial orthophoto rendering (NAIP substitute).

Renders 4-band imagery (Red, Green, Blue, Near-Infrared) from a
:class:`~repro.data.terrain.Scene` using simple but physically sensible
reflectance rules:

- vegetation (the default land cover, denser in riparian zones next to the
  channel) reflects strongly in NIR and moderately in green;
- open water absorbs NIR and red, reflecting green/blue — giving the
  positive NDWI the paper computes;
- road surfaces are spectrally flat (gray) with low NIR.

Band values are reflectances in ``[0, 1]``; sensor noise is additive
Gaussian.  These choices guarantee the NDVI/NDWI channels computed by
:mod:`repro.data.indices` carry real signal about the scene.
"""

from __future__ import annotations

import numpy as np

from repro.data.terrain import Scene

__all__ = ["render_orthophoto", "BAND_NAMES"]

BAND_NAMES = ("red", "green", "blue", "nir")

# Mean reflectance per cover class, rows = (red, green, blue, nir).
_VEGETATION = np.array([0.08, 0.12, 0.06, 0.50], dtype=np.float32)
_BARE_SOIL = np.array([0.25, 0.22, 0.18, 0.30], dtype=np.float32)
_WATER = np.array([0.04, 0.09, 0.11, 0.02], dtype=np.float32)
_ROAD = np.array([0.30, 0.30, 0.30, 0.12], dtype=np.float32)


def _vegetation_density(scene: Scene, rng: np.random.Generator) -> np.ndarray:
    """Fractional vegetation cover in [0, 1], denser near the channel."""
    size = scene.dem.shape[0]
    base = rng.beta(4.0, 2.0)  # region-scale greenness
    density = np.full((size, size), base, dtype=np.float32)
    if scene.channel_mask.any():
        # Riparian buffer: vegetation thickens within ~6 cells of the channel.
        from scipy.ndimage import distance_transform_edt

        dist = distance_transform_edt(~scene.channel_mask)
        density = density + 0.5 * np.exp(-dist / 6.0).astype(np.float32)
    density += rng.normal(0.0, 0.08, size=density.shape).astype(np.float32)
    return np.clip(density, 0.0, 1.0)


def render_orthophoto(scene: Scene, rng: np.random.Generator, noise: float = 0.02) -> np.ndarray:
    """Render a ``(4, H, W)`` float32 orthophoto for ``scene``.

    Band order follows :data:`BAND_NAMES`: red, green, blue, NIR.
    """
    size = scene.dem.shape[0]
    veg = _vegetation_density(scene, rng)[None, :, :]
    bands = veg * _VEGETATION[:, None, None] + (1.0 - veg) * _BARE_SOIL[:, None, None]

    if scene.water_mask.any():
        bands = np.where(scene.water_mask[None, :, :], _WATER[:, None, None], bands)
    if scene.road_mask.any():
        bands = np.where(scene.road_mask[None, :, :], _ROAD[:, None, None], bands)

    # Hillshade modulation: orthophotos carry terrain shading.
    gy, gx = np.gradient(scene.dem)
    shade = 1.0 - 0.15 * np.tanh(gx + gy)
    bands = bands * shade[None, :, :]

    bands = bands + rng.normal(0.0, noise, size=bands.shape)
    return np.clip(bands, 0.0, 1.0).astype(np.float32)
