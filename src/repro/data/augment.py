"""Geometric training augmentation.

Drainage crossings have no canonical orientation, so the dihedral group
(flips + 90-degree rotations) is label-preserving; augmentation operates
on whole ``(N, C, H, W)`` batches with array ops only.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import rng_from_seed

__all__ = ["random_flip_rot", "augment_batch"]


def random_flip_rot(patch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Apply a uniformly random dihedral-group element to one (C, H, W) patch."""
    if patch.ndim != 3 or patch.shape[1] != patch.shape[2]:
        raise ValueError(f"expected a square (C, H, W) patch, got {patch.shape}")
    k = int(rng.integers(0, 4))
    out = np.rot90(patch, k=k, axes=(1, 2))
    if rng.random() < 0.5:
        out = out[:, :, ::-1]
    return np.ascontiguousarray(out)


def augment_batch(x: np.ndarray, rng=None) -> np.ndarray:
    """Independently augment every sample of an (N, C, H, W) batch."""
    if x.ndim != 4:
        raise ValueError(f"expected an (N, C, H, W) batch, got {x.shape}")
    generator = rng_from_seed(rng)
    return np.stack([random_flip_rot(sample, generator) for sample in x])
