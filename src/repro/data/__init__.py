"""Synthetic drainage-crossing dataset (paper Section 2.1 substitute).

The paper trains on 12,068 patches cut from High-Resolution Digital
Elevation Models (HRDEMs) and NAIP aerial orthophotos over four US
watersheds (Table 1).  That data is not redistributable here, so this
subpackage synthesizes a structurally equivalent dataset:

- :mod:`~repro.data.terrain` — spectrally synthesized fractal DEMs with
  carved drainage channels and raised road embankments; a *drainage
  crossing* is a culvert signature where a road embankment crosses a
  channel;
- :mod:`~repro.data.orthophoto` — R/G/B/NIR bands correlated with the
  terrain (riparian vegetation, open water, bare road surface);
- :mod:`~repro.data.indices` — NDVI and NDWI per the paper's Eqs. (1)-(2);
- :mod:`~repro.data.regions` — the Table-1 region registry with per-region
  terrain character and exact sample counts;
- :mod:`~repro.data.dataset` — 5- or 7-channel patch datasets with
  deterministic per-sample seeds, k-fold splits, batch sampling and
  augmentation.
"""

from repro.data.indices import ndvi, ndwi
from repro.data.terrain import TerrainParams, synthesize_dem, generate_scene
from repro.data.orthophoto import render_orthophoto
from repro.data.regions import REGIONS, Region, total_sample_count
from repro.data.dataset import DrainageCrossingDataset, generate_patch, make_paper_dataset
from repro.data.scene_sampler import (
    RegionScene,
    build_scene_dataset,
    detect_crossings,
    generate_region_scene,
    sample_patches,
)
from repro.data.stats import ChannelStats, Normalizer, compute_channel_stats
from repro.data.raster import GeoTransform, Raster, load_raster, save_raster
from repro.data.sampler import BatchSampler
from repro.data.splits import kfold_indices, train_test_split_indices
from repro.data.augment import augment_batch, random_flip_rot

__all__ = [
    "ndvi",
    "ndwi",
    "TerrainParams",
    "synthesize_dem",
    "generate_scene",
    "render_orthophoto",
    "REGIONS",
    "Region",
    "total_sample_count",
    "DrainageCrossingDataset",
    "generate_patch",
    "make_paper_dataset",
    "RegionScene",
    "generate_region_scene",
    "detect_crossings",
    "sample_patches",
    "build_scene_dataset",
    "ChannelStats",
    "Normalizer",
    "compute_channel_stats",
    "GeoTransform",
    "Raster",
    "save_raster",
    "load_raster",
    "BatchSampler",
    "kfold_indices",
    "train_test_split_indices",
    "augment_batch",
    "random_flip_rot",
]
