"""Dataset channel statistics and normalization.

Production training pipelines standardize inputs with statistics computed
over the *training* split only; these helpers compute streaming
per-channel mean/std (Welford's algorithm over batches) and apply them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import DrainageCrossingDataset

__all__ = ["ChannelStats", "compute_channel_stats", "Normalizer"]


@dataclass(frozen=True)
class ChannelStats:
    """Per-channel first and second moments."""

    mean: np.ndarray
    std: np.ndarray

    def __post_init__(self) -> None:
        if self.mean.shape != self.std.shape or self.mean.ndim != 1:
            raise ValueError("mean/std must be 1-D arrays of equal length")
        if np.any(self.std <= 0):
            raise ValueError("std must be strictly positive")

    @property
    def channels(self) -> int:
        return self.mean.shape[0]


def compute_channel_stats(
    dataset: DrainageCrossingDataset,
    indices: np.ndarray | None = None,
    batch: int = 32,
) -> ChannelStats:
    """Streaming per-channel mean/std over the given samples.

    Uses a batched Welford update, so memory stays at one batch regardless
    of dataset size.
    """
    indices = np.arange(len(dataset)) if indices is None else np.asarray(indices)
    if indices.size == 0:
        raise ValueError("cannot compute statistics over zero samples")
    count = 0
    mean = None
    m2 = None
    for start in range(0, indices.size, batch):
        x, _ = dataset.batch(indices[start : start + batch])
        flat = x.transpose(1, 0, 2, 3).reshape(x.shape[1], -1).astype(np.float64)
        batch_count = flat.shape[1]
        batch_mean = flat.mean(axis=1)
        batch_m2 = ((flat - batch_mean[:, None]) ** 2).sum(axis=1)
        if mean is None:
            mean, m2, count = batch_mean, batch_m2, batch_count
            continue
        delta = batch_mean - mean
        total = count + batch_count
        mean = mean + delta * batch_count / total
        m2 = m2 + batch_m2 + delta**2 * count * batch_count / total
        count = total
    assert mean is not None and m2 is not None
    std = np.sqrt(m2 / count)
    std = np.where(std > 1e-8, std, 1.0)
    return ChannelStats(mean=mean.astype(np.float32), std=std.astype(np.float32))


class Normalizer:
    """Applies fixed channel statistics to batches: ``(x - mean) / std``."""

    def __init__(self, stats: ChannelStats) -> None:
        self.stats = stats

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.stats.channels:
            raise ValueError(
                f"expected (N, {self.stats.channels}, H, W), got shape {x.shape}"
            )
        mean = self.stats.mean[None, :, None, None]
        std = self.stats.std[None, :, None, None]
        return ((x - mean) / std).astype(np.float32)

    def inverse(self, x: np.ndarray) -> np.ndarray:
        """Undo the normalization."""
        mean = self.stats.mean[None, :, None, None]
        std = self.stats.std[None, :, None, None]
        return (x * std + mean).astype(np.float32)
