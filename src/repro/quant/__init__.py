"""Post-training quantization (library extension, paper future work).

The paper targets resource-limited devices but evaluates fp32 models
only; the standard next step for edge deployment is int8 post-training
quantization.  This subpackage provides an honest simulation:

- :mod:`~repro.quant.affine` — symmetric/affine per-tensor int8
  quantization with exact round-trip arithmetic;
- :mod:`~repro.quant.model` — quantize a model's weights (fake-quant:
  quantize-dequantize in place) so real forward passes measure the true
  accuracy cost on data, plus the int8 storage size for the memory
  objective.
"""

from repro.quant.affine import (
    AffineQuantizer,
    PerChannelQuantizer,
    dequantize,
    quantize_affine,
    quantization_error,
)
from repro.quant.model import (
    fake_quantize_model,
    quantized_size_bytes,
    quantized_size_mb,
    quantize_state_dict,
)
from repro.quant.observer import ActivationObserver, ActivationRange
from repro.quant.export import export_quantized_model, quantized_model_size_mb

__all__ = [
    "ActivationObserver",
    "ActivationRange",
    "export_quantized_model",
    "quantized_model_size_mb",
    "AffineQuantizer",
    "PerChannelQuantizer",
    "quantize_affine",
    "dequantize",
    "quantization_error",
    "quantize_state_dict",
    "fake_quantize_model",
    "quantized_size_bytes",
    "quantized_size_mb",
]
