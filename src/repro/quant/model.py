"""Model-level post-training quantization.

``fake_quantize_model`` replaces every trainable weight with its int8
quantize-dequantize round trip, so ordinary (fp32) forward passes measure
the *true* accuracy effect of quantization on real data — the honest way
to simulate PTQ without an int8 kernel library.  ``quantized_size_mb``
gives the corresponding storage objective: 1 byte per parameter plus a
float scale/zero-point pair per tensor.

Batch-norm parameters and biases stay fp32 (the universal PTQ practice:
they are tiny and numerically sensitive).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module
from repro.quant.affine import AffineQuantizer, PerChannelQuantizer

__all__ = ["quantize_state_dict", "fake_quantize_model", "quantized_size_bytes", "quantized_size_mb"]

#: Per-tensor metadata stored alongside int8 codes (scale f32 + zp i32 +
#: ~24 bytes of name/shape framing, mirroring the onnxlite header cost).
_PER_TENSOR_OVERHEAD = 32


def _is_quantizable(name: str, array: np.ndarray) -> bool:
    """Conv/linear weights only: >= 2-D tensors outside batch norm."""
    return array.ndim >= 2


def _fit_weight_quantizer(
    array: np.ndarray, dtype: str, per_channel: bool
) -> "AffineQuantizer | PerChannelQuantizer":
    if per_channel:
        return PerChannelQuantizer.fit(array, dtype=dtype)
    return AffineQuantizer.fit(array, dtype=dtype, symmetric=True)


def quantize_state_dict(
    state: dict[str, np.ndarray], dtype: str = "int8", per_channel: bool = True
) -> tuple[dict[str, np.ndarray], dict[str, "AffineQuantizer | PerChannelQuantizer"]]:
    """Quantize the weight tensors of a state dict.

    Returns the state dict with quantizable tensors replaced by their
    fake-quant round trips, plus the fitted quantizers (per-output-channel
    by default, matching :func:`repro.quant.export.export_quantized_model`).
    """
    out: dict[str, np.ndarray] = {}
    quantizers: dict[str, "AffineQuantizer | PerChannelQuantizer"] = {}
    for name, array in state.items():
        array = np.asarray(array)
        if _is_quantizable(name, array):
            quantizer = _fit_weight_quantizer(array, dtype, per_channel)
            out[name] = quantizer.roundtrip(array)
            quantizers[name] = quantizer
        else:
            out[name] = array.copy()
    return out, quantizers


def fake_quantize_model(
    model: Module, dtype: str = "int8", per_channel: bool = True
) -> dict[str, "AffineQuantizer | PerChannelQuantizer"]:
    """Quantize-dequantize a model's weights in place.

    After this call the model still runs in fp32 but its weights carry
    exactly the int8 representation error; evaluate it on data to measure
    the PTQ accuracy drop.  Returns the fitted quantizers.  ``per_channel``
    must match the export convention for the result to mirror the deployed
    model bit-for-bit.
    """
    quantizers: dict[str, "AffineQuantizer | PerChannelQuantizer"] = {}
    for name, parameter in model.named_parameters():
        if _is_quantizable(name, parameter.data):
            quantizer = _fit_weight_quantizer(parameter.data, dtype, per_channel)
            parameter.data[...] = quantizer.roundtrip(parameter.data)
            quantizers[name] = quantizer
    return quantizers


def quantized_size_bytes(model: Module, dtype: str = "int8") -> int:
    """Storage size of the model with int8 weights (fp32 elsewhere)."""
    bytes_per_code = {"int8": 1, "uint8": 1, "int16": 2}[dtype]
    total = 0
    for name, parameter in model.named_parameters():
        if _is_quantizable(name, parameter.data):
            total += parameter.size * bytes_per_code + _PER_TENSOR_OVERHEAD
        else:
            total += parameter.size * 4
    for _name, buffer in model.named_buffers():
        total += int(np.asarray(buffer).size) * 4
    return total


def quantized_size_mb(model: Module, dtype: str = "int8") -> float:
    """Quantized storage in MB (decimal, matching the paper's unit)."""
    return quantized_size_bytes(model, dtype=dtype) / 1e6
