"""Quantized onnxlite export.

Serializes a model with int8 (or int16) weight payloads and per-tensor
affine parameters, so the *measured file size* — the paper's memory
objective — reflects quantized deployment.  The standalone runtime
(:mod:`repro.deploy`) dequantizes on load and runs the model unchanged.
"""

from __future__ import annotations

from pathlib import Path

from repro.graph.trace import trace_model
from repro.nn.resnet import SearchableResNet18
from repro.onnxlite.export import build_model_proto, proto_to_bytes
from repro.onnxlite.schema import TensorProto
from repro.quant.affine import AffineQuantizer, PerChannelQuantizer
from repro.quant.model import _is_quantizable

__all__ = ["export_quantized_model", "quantized_model_size_mb"]


def export_quantized_model(
    model: SearchableResNet18,
    input_hw: tuple[int, int] = (100, 100),
    path: str | Path | None = None,
    dtype: str = "int8",
    per_channel: bool = True,
) -> bytes:
    """Trace and export ``model`` with quantized weight payloads.

    Conv/FC weights are stored as integer codes with their affine
    parameters; batch-norm parameters, biases and running statistics stay
    float32 (the standard PTQ layout).  ``per_channel`` (the default)
    fits one symmetric scale per output channel instead of per tensor —
    the TFLite weight convention, and what the integer kernel path needs
    to fold batch-norm without leaving the int8 domain.
    """
    graph = trace_model(model, input_hw=input_hw)
    proto = build_model_proto(model, graph, name="quantized-model")
    replaced: list[TensorProto] = []
    for tensor in proto.initializers:
        if _is_quantizable(tensor.name, tensor.data):
            if per_channel:
                quantizer = PerChannelQuantizer.fit(tensor.data, dtype=dtype)
                scale: object = quantizer.scales
            else:
                quantizer = AffineQuantizer.fit(tensor.data, dtype=dtype, symmetric=True)
                scale = quantizer.scale
            replaced.append(
                TensorProto(
                    tensor.name,
                    quantizer.quantize(tensor.data),
                    scale=scale,
                    zero_point=quantizer.zero_point,
                )
            )
        else:
            replaced.append(tensor)
    proto.initializers = replaced
    proto.metadata["quantization"] = dtype
    proto.metadata["per_channel"] = per_channel
    blob = proto_to_bytes(proto)
    if path is not None:
        Path(path).write_bytes(blob)
    return blob


def quantized_model_size_mb(
    model: SearchableResNet18,
    input_hw: tuple[int, int] = (100, 100),
    dtype: str = "int8",
) -> float:
    """File size (MB) of the quantized export — the deployment memory objective."""
    return len(export_quantized_model(model, input_hw=input_hw, dtype=dtype)) / 1e6
