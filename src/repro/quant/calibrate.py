"""Activation calibration for the integer inference path.

True int8 execution needs more than quantized weights: every activation
tensor crossing a kernel boundary needs an affine quantizer of its own,
fitted to the value ranges real data produces (the standard post-training
calibration step of TFLite/OpenVINO).  :func:`calibrate_activations`
runs the fp32 *interpreter* — the reference implementation the compiled
plans are certified against — over a handful of calibration batches,
records per-tensor min/max, and embeds asymmetric uint8 quantizers in
``proto.metadata["activations"]`` keyed by tensor name.

The deploy compiler (:func:`repro.deploy.passes.plan_quantization`)
consumes that table to decide which kernels can run in the integer
domain; a model without it simply compiles to the fp32 path, so
calibration is strictly opt-in and old containers keep working.
"""

from __future__ import annotations

import numpy as np

from repro.onnxlite.schema import ModelProto
from repro.quant.affine import AffineQuantizer

__all__ = [
    "ACTIVATIONS_KEY",
    "calibrate_activations",
    "calibration_quantizers",
]

#: Metadata key holding the activation quantizer table.
ACTIVATIONS_KEY = "activations"


def calibrate_activations(
    proto: ModelProto,
    samples: np.ndarray,
    dtype: str = "uint8",
    batch_size: int = 8,
) -> dict[str, AffineQuantizer]:
    """Fit activation quantizers on calibration data and embed them.

    Parameters
    ----------
    proto:
        The model to calibrate (quantized weights are fine — the
        interpreter dequantizes, so the observed ranges include the
        weight quantization error, as they should).
    samples:
        ``(N, C, H, W)`` calibration images.  A few dozen representative
        patches suffice; ranges are pooled over all of them.
    dtype:
        Integer dtype of the activation quantizers (uint8 is the
        conventional choice: ReLU outputs are non-negative, so the
        asymmetric uint8 grid wastes none of its range).
    batch_size:
        Interpreter batch size while observing.

    Returns
    -------
    dict[str, AffineQuantizer]
        Tensor name -> fitted quantizer (also serialized into
        ``proto.metadata["activations"]``, which survives the onnxlite
        container round trip).
    """
    from repro.deploy.runtime import OnnxliteRuntime

    samples = np.asarray(samples, dtype=np.float32)
    if samples.ndim != 4 or samples.shape[0] == 0:
        raise ValueError(f"calibration data must be (N, C, H, W), got {samples.shape}")
    runtime = OnnxliteRuntime(proto)
    lo: dict[str, float] = {}
    hi: dict[str, float] = {}

    def observe(name: str, value: np.ndarray) -> None:
        lo[name] = min(lo.get(name, np.inf), float(value.min()))
        hi[name] = max(hi.get(name, -np.inf), float(value.max()))

    for start in range(0, samples.shape[0], batch_size):
        x = samples[start : start + batch_size]
        env: dict[str, np.ndarray] = {"input": x}
        observe("input", x)
        for op in proto.operators:
            out = runtime._execute(op, [env[name] for name in op.inputs])
            env[op.outputs[0]] = out
            observe(op.outputs[0], out)

    quantizers: dict[str, AffineQuantizer] = {}
    table: dict[str, dict] = {}
    for name in lo:
        quantizer = AffineQuantizer.fit(
            np.array([lo[name], hi[name]]), dtype=dtype, symmetric=False
        )
        quantizers[name] = quantizer
        table[name] = {
            "scale": quantizer.scale,
            "zero_point": quantizer.zero_point,
            "dtype": dtype,
        }
    proto.metadata[ACTIVATIONS_KEY] = table
    # Metadata feeds the fingerprint, which was cached before calibration.
    proto._fingerprint_cache = None
    return quantizers


def calibration_quantizers(proto: ModelProto) -> dict[str, AffineQuantizer]:
    """Rebuild the activation quantizer table from proto metadata.

    Returns an empty dict when the model was never calibrated (the
    compiler then plans a pure fp32 execution).
    """
    table = proto.metadata.get(ACTIVATIONS_KEY) or {}
    return {
        name: AffineQuantizer(
            scale=float(entry["scale"]),
            zero_point=int(entry["zero_point"]),
            dtype=str(entry.get("dtype", "uint8")),
        )
        for name, entry in table.items()
    }
