"""Activation-range observation for quantization calibration.

Static int8 quantization (the mode OpenVINO uses on the paper's Myriad
VPU) needs per-activation ranges gathered from calibration data.
:class:`ActivationObserver` attaches forward hooks to a model's layers,
records min/max of every activation over calibration batches, and fits
asymmetric quantizers from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.module import Module
from repro.quant.affine import AffineQuantizer

__all__ = ["ActivationRange", "ActivationObserver"]


@dataclass
class ActivationRange:
    """Running min/max of one layer's output."""

    low: float = float("inf")
    high: float = float("-inf")
    batches: int = 0

    def update(self, values: np.ndarray) -> None:
        self.low = min(self.low, float(values.min()))
        self.high = max(self.high, float(values.max()))
        self.batches += 1

    @property
    def observed(self) -> bool:
        return self.batches > 0


class ActivationObserver:
    """Collects activation ranges from a model's leaf layers.

    Usage::

        observer = ActivationObserver(model)
        with observer:
            for x, _ in calibration_batches:
                model(Tensor(x))
        quantizers = observer.fit_quantizers()

    Only leaf modules (layers) are observed; container modules would
    duplicate their children's outputs.
    """

    def __init__(self, model: Module, layer_types: tuple[type, ...] | None = None) -> None:
        self.model = model
        self.layer_types = layer_types
        self.ranges: dict[str, ActivationRange] = {}
        self._handles: list = []

    def _should_observe(self, module: Module) -> bool:
        if module._modules:  # containers are skipped
            return False
        if self.layer_types is not None:
            return isinstance(module, self.layer_types)
        return True

    def attach(self) -> "ActivationObserver":
        """Install hooks on every observed layer."""
        if self._handles:
            raise RuntimeError("observer is already attached")
        for name, module in self.model.named_modules():
            if not name or not self._should_observe(module):
                continue
            record = self.ranges.setdefault(name, ActivationRange())

            def hook(mod, inputs, output, record=record):
                data = getattr(output, "data", output)
                record.update(np.asarray(data))

            self._handles.append(module.register_forward_hook(hook))
        return self

    def detach(self) -> None:
        """Remove all hooks (idempotent)."""
        for handle in self._handles:
            handle.remove()
        self._handles.clear()

    def __enter__(self) -> "ActivationObserver":
        return self.attach()

    def __exit__(self, *exc: object) -> None:
        self.detach()

    def fit_quantizers(self, dtype: str = "uint8") -> dict[str, AffineQuantizer]:
        """Asymmetric quantizers for every observed activation."""
        quantizers: dict[str, AffineQuantizer] = {}
        for name, record in self.ranges.items():
            if not record.observed:
                continue
            quantizers[name] = AffineQuantizer.fit(
                np.array([record.low, record.high]), dtype=dtype, symmetric=False
            )
        return quantizers

    def summary(self) -> list[dict]:
        """Per-layer range rows (calibration report)."""
        return [
            {"layer": name, "min": round(r.low, 4), "max": round(r.high, 4), "batches": r.batches}
            for name, r in self.ranges.items()
            if r.observed
        ]
