"""Affine (scale + zero-point) integer quantization primitives.

Implements the standard uniform quantizer used by TFLite/OpenVINO —
the runtimes behind the paper's four latency predictors:

    q = clip(round(x / scale) + zero_point, qmin, qmax)
    x_hat = (q - zero_point) * scale

Symmetric mode (zero_point = 0) is used for weights, asymmetric for
activations; both are supported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "AffineQuantizer",
    "PerChannelQuantizer",
    "quantize_affine",
    "dequantize",
    "quantization_error",
]

_DTYPE_RANGES = {
    "int8": (-128, 127),
    "uint8": (0, 255),
    "int16": (-32768, 32767),
}


@dataclass(frozen=True)
class AffineQuantizer:
    """A fitted per-tensor quantizer."""

    scale: float
    zero_point: int
    dtype: str = "int8"

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPE_RANGES:
            raise ValueError(f"unsupported dtype {self.dtype!r}; choose from {sorted(_DTYPE_RANGES)}")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")

    @property
    def qmin(self) -> int:
        return _DTYPE_RANGES[self.dtype][0]

    @property
    def qmax(self) -> int:
        return _DTYPE_RANGES[self.dtype][1]

    @classmethod
    def fit(cls, values: np.ndarray, dtype: str = "int8", symmetric: bool = True) -> "AffineQuantizer":
        """Calibrate scale/zero-point to a tensor's observed range.

        Symmetric: scale covers ``max |x|`` with zero_point 0 (weight
        convention).  Asymmetric: the full [min, max] interval maps onto
        the integer range (activation convention).
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot fit a quantizer to an empty tensor")
        qmin, qmax = _DTYPE_RANGES[dtype]
        if symmetric:
            bound = float(np.abs(values).max())
            # max(..., 1e-12) also guards against denormal underflow of
            # the division itself (e.g. |x| ~ 5e-324).
            scale = max(bound / max(abs(qmin), qmax), 1e-12)
            return cls(scale=scale, zero_point=0, dtype=dtype)
        # TFLite convention: the representable range must include zero so
        # zero-padding quantizes exactly; extend the observed range to 0.
        lo = min(float(values.min()), 0.0)
        hi = max(float(values.max()), 0.0)
        if hi <= lo:
            hi = lo + 1e-8
        scale = max((hi - lo) / (qmax - qmin), 1e-12)
        zero_point = int(round(qmin - lo / scale))
        zero_point = int(np.clip(zero_point, qmin, qmax))
        return cls(scale=scale, zero_point=zero_point, dtype=dtype)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Float -> integer codes (numpy integer dtype)."""
        q = np.round(np.asarray(values, dtype=np.float64) / self.scale) + self.zero_point
        return np.clip(q, self.qmin, self.qmax).astype(self.dtype)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes -> reconstructed float32."""
        return ((codes.astype(np.float64) - self.zero_point) * self.scale).astype(np.float32)

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """Quantize-dequantize (the fake-quant operation)."""
        return self.dequantize(self.quantize(values))


@dataclass(frozen=True)
class PerChannelQuantizer:
    """A fitted per-channel (axis-0) symmetric quantizer.

    One scale per output channel — the TFLite/OpenVINO weight layout for
    Conv (``(C_out, C_in, k, k)``) and FC (``(out, in)``) tensors.  A
    narrow channel no longer inherits the widest channel's step size,
    which is what keeps int8 conv accuracy loss inside the paper's
    reported tolerance.  Weights are always symmetric (zero_point 0), so
    integer kernels can fold batch-norm by rescaling ``scales`` alone.
    """

    scales: np.ndarray = field(repr=False)  # float64, shape (C,)
    dtype: str = "int8"

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPE_RANGES:
            raise ValueError(f"unsupported dtype {self.dtype!r}; choose from {sorted(_DTYPE_RANGES)}")
        scales = np.ascontiguousarray(np.asarray(self.scales, dtype=np.float64).reshape(-1))
        if scales.size == 0 or (scales <= 0).any():
            raise ValueError("per-channel scales must be a non-empty positive vector")
        object.__setattr__(self, "scales", scales)

    @property
    def qmin(self) -> int:
        return _DTYPE_RANGES[self.dtype][0]

    @property
    def qmax(self) -> int:
        return _DTYPE_RANGES[self.dtype][1]

    @property
    def zero_point(self) -> int:
        """Symmetric by construction."""
        return 0

    @property
    def num_channels(self) -> int:
        return int(self.scales.size)

    def _col(self, values: np.ndarray) -> np.ndarray:
        """Scales broadcast-shaped against ``values`` along axis 0."""
        if values.shape[0] != self.num_channels:
            raise ValueError(
                f"tensor has {values.shape[0]} channels on axis 0, quantizer "
                f"has {self.num_channels} scales"
            )
        return self.scales.reshape((-1,) + (1,) * (values.ndim - 1))

    @classmethod
    def fit(cls, values: np.ndarray, dtype: str = "int8") -> "PerChannelQuantizer":
        """Calibrate one symmetric scale per axis-0 slice."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim < 2:
            raise ValueError(
                f"per-channel quantization needs a >= 2-D tensor, got ndim {values.ndim}"
            )
        qmin, qmax = _DTYPE_RANGES[dtype]
        bounds = np.abs(values.reshape(values.shape[0], -1)).max(axis=1)
        scales = np.maximum(bounds / max(abs(qmin), qmax), 1e-12)
        return cls(scales=scales, dtype=dtype)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Float -> integer codes (numpy integer dtype)."""
        values = np.asarray(values, dtype=np.float64)
        q = np.round(values / self._col(values))
        return np.clip(q, self.qmin, self.qmax).astype(self.dtype)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes -> reconstructed float32."""
        return (codes.astype(np.float64) * self._col(codes)).astype(np.float32)

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """Quantize-dequantize (the fake-quant operation)."""
        return self.dequantize(self.quantize(values))


def quantize_affine(
    values: np.ndarray,
    dtype: str = "int8",
    symmetric: bool = True,
    per_channel: bool = False,
) -> tuple[np.ndarray, "AffineQuantizer | PerChannelQuantizer"]:
    """Fit a quantizer to ``values`` and return (codes, quantizer).

    ``per_channel=True`` fits one symmetric scale per axis-0 slice (the
    weight convention); it requires ``symmetric`` and a >= 2-D tensor.
    """
    if per_channel:
        if not symmetric:
            raise ValueError("per-channel quantization is symmetric-only (weight convention)")
        quantizer = PerChannelQuantizer.fit(values, dtype=dtype)
        return quantizer.quantize(values), quantizer
    quantizer = AffineQuantizer.fit(values, dtype=dtype, symmetric=symmetric)
    return quantizer.quantize(values), quantizer


def dequantize(codes: np.ndarray, quantizer: AffineQuantizer) -> np.ndarray:
    """Reconstruct float values from codes."""
    return quantizer.dequantize(codes)


def quantization_error(values: np.ndarray, dtype: str = "int8", symmetric: bool = True) -> float:
    """RMS relative reconstruction error of quantizing ``values``."""
    values = np.asarray(values, dtype=np.float64)
    quantizer = AffineQuantizer.fit(values, dtype=dtype, symmetric=symmetric)
    reconstructed = quantizer.roundtrip(values)
    denom = np.sqrt(np.mean(values**2)) + 1e-12
    return float(np.sqrt(np.mean((values - reconstructed) ** 2)) / denom)
