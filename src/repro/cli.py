"""Command-line interface: ``repro-nas`` (or ``python -m repro``).

Subcommands
-----------
``space``
    Print the search-space structure and cardinality (Figure 2).
``sweep``
    Run a NAS sweep (surrogate accuracy) and write trials to JSONL.
``pareto``
    Read a trial JSONL and print the non-dominated solutions (Table 4).
``baseline``
    Evaluate the stock ResNet-18 on the six input variants (Table 5).
``latency``
    Predict one configuration's latency on all four device profiles.
``profile``
    Per-layer wall-time profile of one configuration (real forward pass).
``infer``
    One-shot deploy inference timing (compiled plan by default,
    ``--no-compiled`` for the interpreted reference, ``--quantized``
    for the int8 + autotuned-kernel path with the per-kernel
    variant/energy table).
``serve-bench``
    Load-generator benchmark of the :mod:`repro.serve` micro-batching
    server: throughput, p50/p99 latency, speedup vs the serial
    single-image baseline; ``--json`` for a CI artifact, ``--obs-log``
    for the metrics JSONL, ``--quantized``/``--autotune-json`` for the
    int8 scenario and its kernel-selection artifact.
``obs``
    Render or export an observability JSONL log (``repro obs report`` /
    ``repro obs export``); logs are produced by ``sweep --obs-log`` or
    any :func:`repro.obs.configure` call with a ``jsonl_path``.
"""

from __future__ import annotations

import argparse
import sys

from repro.utils.logging import configure, get_logger
from repro.utils.tables import render_table

_LOG = get_logger("cli")


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--channels", type=int, default=5, choices=(5, 7))
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument("--kernel-size", type=int, default=3)
    parser.add_argument("--stride", type=int, default=2)
    parser.add_argument("--padding", type=int, default=1)
    parser.add_argument("--pool-choice", type=int, default=0, choices=(0, 1))
    parser.add_argument("--kernel-size-pool", type=int, default=3)
    parser.add_argument("--stride-pool", type=int, default=2)
    parser.add_argument("--initial-output-feature", type=int, default=32)


def _config_from_args(args: argparse.Namespace):
    from repro.nas.config import ModelConfig

    return ModelConfig(
        channels=args.channels,
        batch=args.batch,
        kernel_size=args.kernel_size,
        stride=args.stride,
        padding=args.padding,
        pool_choice=args.pool_choice,
        kernel_size_pool=args.kernel_size_pool,
        stride_pool=args.stride_pool,
        initial_output_feature=args.initial_output_feature,
    )


def _cmd_space(args: argparse.Namespace) -> int:
    from repro.core.figures import searchspace_figure

    fig = searchspace_figure()
    for knob, choices in fig["knobs"].items():
        print(f"{knob:24s} {choices}")
    print(f"architectures/combination: {fig['architectures_per_combination']}")
    print(f"unique architectures:      {fig['unique_architectures_per_combination']}")
    print(f"total configurations:      {fig['total_configurations']}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import repro.obs as obs
    from repro.nas import Experiment, FailureInjector, GridSearch, SurrogateEvaluator, TrialStore
    from repro.nas.searchspace import DEFAULT_SPACE

    if args.resume and not (args.shards or args.nodes):
        print("--resume requires the distributed path; add --shards/--nodes")
        return 2
    if args.obs_log:
        obs.configure(jsonl_path=args.obs_log, reset_metrics=True)
    injector = FailureInjector.paper_mode(seed=args.seed) if args.paper_mode else FailureInjector.none()
    budget = args.budget or DEFAULT_SPACE.total_configurations()
    try:
        if args.shards or args.nodes:
            # Distributed path: --out is a *directory* of shard files.
            from repro.nas.fabric import run_fabric_sweep

            result = run_fabric_sweep(
                SurrogateEvaluator(seed=args.seed),
                GridSearch(DEFAULT_SPACE),
                root=args.out,
                budget=budget,
                n_shards=max(args.shards, 1),
                n_nodes=max(args.nodes, 1),
                resume=args.resume,
                failure_injector=injector,
                batch_size=args.batch_size,
                lease_ttl_s=args.lease_ttl,
            )
            print(f"launched={result.launched} valid={result.succeeded} "
                  f"failed={result.failed} skipped={result.skipped}")
            print(f"claims={result.claims} reclaims={result.reclaims} "
                  f"steals={result.steals} poisoned={result.poisoned}")
            print(f"shards written to {args.out}/")
        else:
            store = TrialStore(args.out)
            experiment = Experiment(
                evaluator=SurrogateEvaluator(seed=args.seed),
                strategy=GridSearch(DEFAULT_SPACE),
                store=store,
                failure_injector=injector,
            )
            result = experiment.run(budget=budget)
            print(f"launched={result.launched} valid={result.succeeded} failed={result.failed}")
            print(f"trials written to {args.out}")
    finally:
        if args.obs_log:
            obs.shutdown()
    if args.obs_log:
        print(f"observability log written to {args.obs_log} "
              f"(render with: repro-nas obs report {args.obs_log})")
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from repro.nas import TrialStore
    from repro.pareto import ParetoAnalysis

    store = TrialStore(args.trials)
    count = store.load()
    if count == 0:
        _LOG.error("no trials found in %s", args.trials)
        return 1
    records = store.analysis_records()
    front = ParetoAnalysis().front_records(records)
    front = sorted(front, key=lambda r: -r["accuracy"])
    print(render_table(
        [{k: r[k] for k in ("channels", "batch", "accuracy", "latency_ms", "lat_std", "memory_mb",
                            "kernel_size", "stride", "padding", "pool_choice", "initial_output_feature")}
         for r in front],
        title=f"Non-dominated solutions ({len(front)} of {count})",
    ))
    if args.html:
        from repro.core.export_html import export_pareto_html
        from repro.pareto import ParetoAnalysis as _PA

        result = _PA().run(records)
        size = export_pareto_html(records, result.front_indices.tolist(), args.html)
        print(f"interactive scatter written to {args.html} ({size / 1e3:.1f} kB)")
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    from repro.core.pipeline import evaluate_baselines
    from repro.core.report import baseline_table

    rows = baseline_table(evaluate_baselines())
    print(render_table(rows, title="Stock ResNet-18 benchmark variants (Table 5)"))
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.nas.experiment import measure_architecture

    metrics = measure_architecture(_config_from_args(args))
    rows = [{"device": name, "latency_ms": ms} for name, ms in metrics.per_device_ms.items()]
    rows.append({"device": "MEAN", "latency_ms": metrics.latency_ms})
    rows.append({"device": "STD", "latency_ms": metrics.lat_std})
    print(render_table(rows, title="Predicted inference latency"))
    print(f"memory: {metrics.memory_mb:.2f} MB, params: {metrics.param_count:,}, "
          f"flops: {metrics.flops/1e6:.1f} MF")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.markdown_report import write_sweep_report
    from repro.core.pipeline import run_paper_sweep

    print("running the full sweep and writing the markdown report (~2 min)...")
    result = run_paper_sweep(seed=args.seed)
    size = write_sweep_report(result, args.out, include_baseline=True)
    print(f"report written to {args.out} ({size / 1e3:.1f} kB)")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.validation import verify_reproduction

    print("running the full sweep and verifying every reproduction claim (~2 min)...")
    report = verify_reproduction(seed=args.seed)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_energy(args: argparse.Namespace) -> int:
    from repro.graph.trace import trace_model
    from repro.latency.energy import ENERGY_MODELS, estimate_energy_mj
    from repro.nn.resnet import build_model

    graph = trace_model(build_model(_config_from_args(args)), input_hw=(100, 100))
    rows = [{"device": d, "energy_mj": round(estimate_energy_mj(graph, d), 3)} for d in ENERGY_MODELS]
    print(render_table(rows, title="Estimated single-inference energy (synthetic model, see docs)"))
    return 0


def _cmd_quantize(args: argparse.Namespace) -> int:
    from repro.nn import count_parameters
    from repro.nn.resnet import build_model
    from repro.onnxlite import model_size_mb
    from repro.quant import fake_quantize_model, quantized_size_mb

    model = build_model(_config_from_args(args))
    fp32 = model_size_mb(model)
    quantizers = fake_quantize_model(model, dtype=args.dtype)
    int_mb = quantized_size_mb(model, dtype=args.dtype)
    print(f"parameters: {count_parameters(model):,}")
    print(f"fp32 storage: {fp32:.2f} MB")
    print(f"{args.dtype} storage: {int_mb:.2f} MB ({fp32 / int_mb:.1f}x smaller)")
    print(f"quantized tensors: {len(quantizers)} (weights only; BN/bias stay fp32)")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.nn.resnet import build_model
    from repro.profiling import profile_model, profile_table

    model = build_model(_config_from_args(args))
    profiles = profile_model(model, batch=args.profile_batch, input_hw=(args.size, args.size))
    print(profile_table(profiles, title=f"Forward-pass profile ({args.size}x{args.size})"))
    return 0


def _build_quantized_plan(model, config, size: int, batch: int, seed: int,
                          cache_path: str = ""):
    """Quantized export -> calibration -> autotune -> compiled int8 plan.

    Returns ``(plan, autotune_result)``.  Calibration runs on synthetic
    patches from a fixed-seed generator so repeated invocations produce
    the same proto fingerprint (and therefore hit the autotune cache).
    """
    import numpy as np

    from repro.deploy import autotune_variants, compile_plan
    from repro.onnxlite.reader import proto_from_bytes
    from repro.quant import export_quantized_model
    from repro.quant.calibrate import calibrate_activations

    proto = proto_from_bytes(export_quantized_model(model, input_hw=(size, size)))
    rng = np.random.default_rng(seed)
    calib = rng.standard_normal((16, config.channels, size, size)).astype("float32")
    calibrate_activations(proto, calib)
    tune = autotune_variants(proto, batch=batch, cache_path=cache_path or None)
    return compile_plan(proto, variants=tune.variants), tune


def _print_variant_energy_table(model, size: int, plan, device: str = "cortexA76cpu") -> None:
    """Per-kernel variant + energy table for a compiled plan."""
    from repro.graph.trace import trace_model
    from repro.latency import energy_report

    graph = trace_model(model, input_hw=(size, size))
    rows = energy_report(graph, device, variants=plan.kernel_variants())
    print(render_table(
        [{"kernel": r["kernel"], "variant": r["variant"],
          "energy_uj": round(r["energy_mj"] * 1e3, 2)} for r in rows],
        title=f"Kernel variants & estimated energy ({device})",
    ))
    total = sum(r["energy_mj"] for r in rows)
    print(f"estimated dynamic energy/inference: {total:.3f} mJ on {device}")


def _cmd_infer(args: argparse.Namespace) -> int:
    import time

    import numpy as np

    from repro.deploy import load_runtime
    from repro.nn.resnet import build_model
    from repro.onnxlite.export import export_model

    config = _config_from_args(args)
    model = build_model(config)
    rng = np.random.default_rng(args.seed)
    x = rng.standard_normal((args.batch, config.channels, args.size, args.size)).astype("float32")
    if args.quantized:
        plan, tune = _build_quantized_plan(
            model, config, args.size, args.batch, seed=args.seed,
            cache_path=args.autotune_cache)
        run = plan.run
        mode = (f"compiled plan (int8 weights, "
                f"{len(tune.variants)} layers autotuned"
                f"{', cached decisions' if tune.cached else ''})")
    else:
        runtime = load_runtime(export_model(model, input_hw=(args.size, args.size)))
        compiled = args.compiled

        def run(batch):
            return runtime.run(batch, compiled=compiled)

        mode = "compiled plan" if compiled else "interpreted"
    run(x)  # warm (also compiles the plan once)
    timings = []
    for _ in range(args.runs):
        t0 = time.perf_counter()
        out = run(x)
        timings.append(time.perf_counter() - t0)
    best = min(timings)
    print(f"{mode}: batch {args.batch} @ {args.size}x{args.size}, best of {args.runs}: "
          f"{best * 1e3:.2f} ms ({args.batch / best:.1f} images/sec)")
    print(f"logits[0]: {np.array2string(out[0], precision=4)}")
    if args.quantized:
        _print_variant_energy_table(model, args.size, plan)
    return 0


#: The serve-bench fleet ladder: width rungs served side by side (the
#: Pareto front's latency axis — wider stem = more FLOPs per image).
_FLEET_WIDTHS = (32, 48, 64)
_FLEET_NAMES = ("pareto-s", "pareto-m", "pareto-l")


def _run_fleet_bench(args: argparse.Namespace) -> int:
    """The mixed-model multi-tenant fleet scenario behind ``--fleet N``."""
    import dataclasses
    import json

    import repro.obs as obs
    from repro.deploy import load_runtime
    from repro.graph.trace import trace_model
    from repro.latency import latency_table
    from repro.nas.surrogate import SurrogateEvaluator
    from repro.nn.resnet import build_model
    from repro.onnxlite.export import export_model
    from repro.parallel import available_cpus
    from repro.serve import (
        AdmissionPolicy,
        AutoscalerConfig,
        BatchPolicy,
        FleetServer,
        ServeConfig,
        TenantLoad,
        TenantQuota,
        run_fleet_load,
    )

    if args.worker_mode != "thread":
        _LOG.error("--fleet is thread-mode only; drop --policy.worker-mode")
        return 2
    n_models = min(args.fleet, len(_FLEET_WIDTHS))
    if n_models < args.fleet:
        _LOG.warning("--fleet %d clamped to the %d-rung width ladder",
                     args.fleet, n_models)
    if args.obs_log:
        obs.configure(jsonl_path=args.obs_log, reset_metrics=True)

    base_config = _config_from_args(args)
    surrogate = SurrogateEvaluator()
    policy = BatchPolicy(
        max_batch_size=args.max_batch,
        max_queue_delay_ms=args.max_delay_ms,
        max_queue_depth=args.queue_depth,
        replicas=args.replicas,
        worker_mode="thread",
    )
    serve_config = ServeConfig(
        policy=policy,
        admission=AdmissionPolicy(tenants={
            "interactive": TenantQuota(rate_per_s=4000, burst=256, priority=1),
            "analytics": TenantQuota(rate_per_s=2000, burst=128, priority=0),
            "archive": TenantQuota(rate_per_s=1000, burst=64, priority=0),
        }),
        autoscaler=AutoscalerConfig(
            min_replicas=1,
            max_replicas=max(1, args.autoscale_max),
            background=True,
            interval_s=0.25,
        ),
    )

    models: dict[str, dict] = {}
    fleet = FleetServer(serve_config)
    for name, width in zip(_FLEET_NAMES[:n_models], _FLEET_WIDTHS[:n_models]):
        cfg = dataclasses.replace(base_config, initial_output_feature=width)
        model = build_model(cfg)
        plan = load_runtime(
            export_model(model, input_hw=(args.size, args.size))
        ).compile()
        table = latency_table(trace_model(model, input_hw=(args.size, args.size)))
        accuracy = surrogate.expected_accuracy(cfg)
        fleet.register(name, plan, accuracy=accuracy, latency_ms=table)
        models[name] = {
            "width": width,
            "accuracy_pct": round(accuracy, 2),
            "latency_ms": {k: round(v, 3) for k, v in sorted(table.items())},
        }
        print(f"registered {name}: f={width}, surrogate accuracy "
              f"{accuracy:.2f}%, predicted mean {table['mean']:.2f} ms "
              f"(cortexA76cpu {table['cortexA76cpu']:.2f} ms)")

    # Budgets are device predictions on the ladder's cortexA76cpu column:
    # interactive's budget admits only the small rung, analytics' admits
    # the mid rung under spill, archive pins the large rung by hint.
    small_ms = models[_FLEET_NAMES[0]]["latency_ms"]["cortexA76cpu"]
    interactive_budget = round(small_ms * 1.5, 2)
    analytics_budget = round(small_ms * 3.0, 2)
    tenants = [
        TenantLoad(name="interactive", clients=max(2, args.clients // 2),
                   budget_ms=interactive_budget, device="cortexA76cpu",
                   deadline_ms=400.0, priority=1),
        TenantLoad(name="analytics", clients=max(1, args.clients // 4),
                   budget_ms=analytics_budget, device="cortexA76cpu",
                   deadline_ms=800.0),
        TenantLoad(name="archive", clients=max(1, args.clients // 8),
                   model=_FLEET_NAMES[n_models - 1], deadline_ms=1500.0),
    ]
    try:
        with fleet:
            report = run_fleet_load(
                fleet, tenants, duration_s=args.duration, seed=args.seed
            )
            stats = fleet.stats()
            scale_events = list(fleet.scale_events)
    finally:
        if args.obs_log:
            obs.shutdown()

    print(report.render())
    for event in scale_events:
        print(f"  scale {event['action']:<4} {event['model']} -> "
              f"{event['replicas']} replica(s) (queue {event['queue_depth']})")
    print(f"  cores {available_cpus()}  cache hits {stats['cache']['hits']}  "
          f"misses {stats['cache']['misses']}")
    if args.obs_log:
        print(f"observability log written to {args.obs_log} "
              f"(render with: repro-nas obs report {args.obs_log})")

    if args.json:
        payload = {
            "fleet": report.as_dict(),
            "models": models,
            "tenants": [dataclasses.asdict(t) for t in tenants],
            "slo_attainment": report.slo_attainment,
            "all_routes_fit_budget": report.all_routes_fit_budget,
            "scale_events": scale_events,
            "counters": {
                name: {k: v for k, v in m.items() if isinstance(v, (int, float))}
                for name, m in stats["models"].items()
            },
            "admission": stats.get("admission", {}),
            "extra_info": {
                "cpu_count": available_cpus(),
                "serve_config": serve_config.as_dict(),
            },
            "input_hw": args.size,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"JSON written to {args.json}")

    if args.assert_slo > 0:
        ok = report.slo_attainment >= args.assert_slo and report.all_routes_fit_budget
        if not ok:
            _LOG.error(
                "fleet SLO assertion failed: attainment %.4f (need >= %.4f), "
                "all_routes_fit_budget=%s",
                report.slo_attainment, args.assert_slo,
                report.all_routes_fit_budget,
            )
            return 1
        print(f"SLO assertion passed: attainment "
              f"{100 * report.slo_attainment:.2f}% >= "
              f"{100 * args.assert_slo:.0f}%, all routes fit budget")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    import json

    import repro.obs as obs
    from repro.deploy import load_runtime
    from repro.graph.trace import trace_model
    from repro.nn.resnet import build_model
    from repro.onnxlite.export import export_model
    from repro.parallel import available_cpus
    from repro.serve import (
        BatchPolicy,
        PlanServer,
        ServeConfig,
        run_load,
        serial_baseline,
        suggest_batch_policy,
    )

    if args.fleet > 0:
        return _run_fleet_bench(args)
    if args.obs_log:
        obs.configure(jsonl_path=args.obs_log, reset_metrics=True)
    config = _config_from_args(args)
    model = build_model(config)
    runtime = load_runtime(export_model(model, input_hw=(args.size, args.size)))
    fp32_plan = runtime.compile()
    tune = None
    if args.quantized:
        plan, tune = _build_quantized_plan(
            model, config, args.size, args.max_batch, seed=args.seed,
            cache_path=args.autotune_cache)
        print(f"serving the quantized plan: {len(tune.variants)} layers autotuned"
              f"{' (cached decisions)' if tune.cached else ''}")
    else:
        plan = fp32_plan
    replicas = args.workers if args.workers > 0 else args.replicas
    if args.target_p99_ms > 0:
        policy = suggest_batch_policy(
            trace_model(model, input_hw=(args.size, args.size)),
            target_p99_ms=args.target_p99_ms,
            replicas=replicas,
            worker_mode=args.worker_mode,
        )
        print(f"policy seeded from latency predictors (target p99 {args.target_p99_ms} ms): "
              f"max_batch={policy.max_batch_size}, "
              f"max_delay={policy.max_queue_delay_ms:.2f} ms, "
              f"queue_depth={policy.max_queue_depth}")
    else:
        policy = BatchPolicy(
            max_batch_size=args.max_batch,
            max_queue_delay_ms=args.max_delay_ms,
            max_queue_depth=args.queue_depth,
            replicas=replicas,
            worker_mode=args.worker_mode,
        )
    baseline = serial_baseline(plan.replicate(), duration_s=min(1.0, args.duration / 2))
    quantized_info = None
    if args.quantized:
        # Paired serial comparison on the same machine state: the served
        # plan (quantized + autotuned) vs the fp32 default compilation.
        fp32_serial = serial_baseline(fp32_plan.replicate(),
                                      duration_s=min(1.0, args.duration / 2))
        ratio = (baseline.throughput_ips / fp32_serial.throughput_ips
                 if fp32_serial.throughput_ips else float("nan"))
        quantized_info = {
            "autotuned_layers": len(tune.variants),
            "autotune_cached": tune.cached,
            "serial_fp32_ips": round(fp32_serial.throughput_ips, 1),
            "serial_quantized_ips": round(baseline.throughput_ips, 1),
            "quantized_vs_fp32": round(ratio, 3),
        }
        print(f"quantized vs fp32 serial: {baseline.throughput_ips:.1f} vs "
              f"{fp32_serial.throughput_ips:.1f} images/sec ({ratio:.2f}x)")
    try:
        with PlanServer(plan, config=ServeConfig(policy=policy)) as server:
            effective_policy = server.policy  # replicas may have been clamped
            effective_config = server.config
            report = run_load(
                server,
                duration_s=args.duration,
                clients=args.clients,
                arrival_rate_ips=args.rate or None,
                seed=args.seed,
            )
            stats = server.stats()
    finally:
        if args.obs_log:
            obs.shutdown()
    policy = effective_policy
    speedup = (report.throughput_ips / baseline.throughput_ips
               if baseline.throughput_ips else float("nan"))
    print(f"serial baseline: {baseline.throughput_ips:.1f} images/sec "
          f"(p50 {baseline.latency_ms_p50:.2f} ms)")
    print(report.render())
    print(f"  speedup     {speedup:.2f}x vs serial single-image")
    print(f"  cache       hits {stats['hits']}  misses {stats['misses']}  "
          f"rejected {stats['rejected']}")
    print(f"  workers     mode {policy.worker_mode}  replicas {policy.replicas}  "
          f"cores {available_cpus()}")
    if policy.worker_mode == "process":
        print(f"  processes   pids {stats.get('worker_pids', [])}  "
              f"deaths {stats.get('worker_deaths', 0)}  "
              f"respawns {stats.get('worker_respawns', 0)}  "
              f"shared weights {stats.get('shared_weight_bytes', 0) / 1e6:.1f} MB "
              f"(private copies {stats.get('worker_private_weight_bytes', 0)} B)")
    if args.obs_log:
        print(f"observability log written to {args.obs_log} "
              f"(render with: repro-nas obs report {args.obs_log})")
    if args.json:
        payload = {
            "serving": report.as_dict(),
            "serial_baseline": baseline.as_dict(),
            "speedup_vs_serial": round(speedup, 3),
            "policy": {
                "max_batch_size": policy.max_batch_size,
                "max_queue_delay_ms": round(policy.max_queue_delay_ms, 3),
                "max_queue_depth": policy.max_queue_depth,
                "replicas": policy.replicas,
                "worker_mode": policy.worker_mode,
            },
            "counters": {
                "rejected": stats["rejected"],
                "batches_executed": stats["batches_executed"],
                "worker_deaths": stats.get("worker_deaths", 0),
                "worker_respawns": stats.get("worker_respawns", 0),
            },
            "extra_info": {
                "worker_mode": policy.worker_mode,
                "workers": policy.replicas,
                "cpu_count": available_cpus(),
                "degraded": stats.get("degraded", False),
                "shared_weight_bytes": stats.get("shared_weight_bytes", 0),
                "worker_private_weight_bytes": stats.get(
                    "worker_private_weight_bytes", 0),
                # The resolved (post-clamp) server construction config.
                "serve_config": effective_config.as_dict(),
            },
            "input_hw": args.size,
        }
        if quantized_info is not None:
            payload["quantized"] = quantized_info
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"JSON written to {args.json}")
    if args.autotune_json:
        if tune is None:
            _LOG.warning("--autotune-json requires --quantized; nothing written")
        else:
            with open(args.autotune_json, "w", encoding="utf-8") as fh:
                json.dump(tune.to_json(), fh, indent=2)
            print(f"autotune decision table written to {args.autotune_json}")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import export_chrome_trace, export_prometheus, read_events, render_report

    events = read_events(args.log)
    if not events:
        _LOG.error("no events found in %s", args.log)
        return 1
    if args.obs_command == "report":
        print(render_report(events, coverage_parent=args.parent))
        return 0
    # export
    if args.format == "chrome":
        size = export_chrome_trace(events, args.out)
        print(f"Chrome trace written to {args.out} ({size / 1e3:.1f} kB); "
              f"open chrome://tracing or https://ui.perfetto.dev")
    else:
        text = export_prometheus(events, args.out)
        print(f"Prometheus exposition written to {args.out} "
              f"({len(text.splitlines())} lines)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-nas`` argument parser."""
    parser = argparse.ArgumentParser(prog="repro-nas", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("-v", "--verbose", action="store_true", help="debug logging")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("space", help="print the search space (Figure 2)")

    sweep = sub.add_parser("sweep", help="run a NAS sweep to JSONL")
    sweep.add_argument("--out", default="trials.jsonl")
    sweep.add_argument("--budget", type=int, default=0, help="0 = full grid")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--paper-mode", action="store_true", help="inject the 11 paper failures")
    sweep.add_argument("--obs-log", default="", help="also write an observability JSONL log here")
    sweep.add_argument("--shards", type=int, default=0,
                       help="distributed: shard the store N ways (--out becomes a directory)")
    sweep.add_argument("--nodes", type=int, default=0,
                       help="distributed: run N worker nodes over the lease table")
    sweep.add_argument("--resume", action="store_true",
                       help="distributed: load the sharded store, verify its manifest, "
                            "skip completed trials")
    sweep.add_argument("--batch-size", type=int, default=1,
                       help="distributed: trials per lease claim")
    sweep.add_argument("--lease-ttl", type=float, default=30.0,
                       help="distributed: seconds without a heartbeat before a lease is reclaimed")

    pareto = sub.add_parser("pareto", help="Pareto front of a trial JSONL (Table 4)")
    pareto.add_argument("trials", help="path to a sweep JSONL file")
    pareto.add_argument("--html", default="", help="also write an interactive HTML scatter")

    sub.add_parser("baseline", help="evaluate stock ResNet-18 variants (Table 5)")

    verify = sub.add_parser("verify", help="run the sweep and verify every paper claim")
    verify.add_argument("--seed", type=int, default=0)

    report = sub.add_parser("report", help="write a markdown paper-vs-measured report")
    report.add_argument("--out", default="sweep_report.md")
    report.add_argument("--seed", type=int, default=0)

    latency = sub.add_parser("latency", help="predict latency of one config")
    _add_config_arguments(latency)

    energy = sub.add_parser("energy", help="estimate inference energy of one config")
    _add_config_arguments(energy)

    quantize = sub.add_parser("quantize", help="int8 post-training quantization what-if")
    _add_config_arguments(quantize)
    quantize.add_argument("--dtype", default="int8", choices=("int8", "uint8", "int16"))

    profile = sub.add_parser("profile", help="per-layer forward profile of one config")
    _add_config_arguments(profile)
    profile.add_argument("--size", type=int, default=64, help="input patch size")
    profile.add_argument("--profile-batch", type=int, default=4)

    infer = sub.add_parser("infer", help="run inference on one config (deploy runtime)")
    _add_config_arguments(infer)
    infer.add_argument("--size", type=int, default=24,
                       help="spatial input size (deployment tile)")
    infer.add_argument("--runs", type=int, default=5, help="timed repetitions")
    infer.add_argument("--seed", type=int, default=0)
    infer.add_argument("--compiled", action=argparse.BooleanOptionalAction, default=True,
                       help="execute through the compiled InferencePlan "
                            "(--no-compiled for the interpreted reference; "
                            "both paths agree within rtol=1e-3/atol=1e-4)")
    infer.add_argument("--quantized", action="store_true",
                       help="serve the int8 path: quantized export + activation "
                            "calibration + per-layer kernel autotuning; prints "
                            "the kernel-variant table with per-kernel energy "
                            "estimates")
    infer.add_argument("--autotune-cache", default="",
                       help="JSON autotune decision cache (reused across runs "
                            "keyed by model fingerprint and batch)")

    serve_bench = sub.add_parser(
        "serve-bench",
        help="closed/open-loop load benchmark of the micro-batching server")
    _add_config_arguments(serve_bench)
    serve_bench.add_argument("--size", type=int, default=24,
                             help="spatial input size (deployment tile)")
    serve_bench.add_argument("--duration", type=float, default=3.0,
                             help="load-generation length in seconds")
    serve_bench.add_argument("--clients", type=int, default=32,
                             help="concurrent client threads")
    serve_bench.add_argument("--rate", type=float, default=0.0,
                             help="aggregate open-loop arrival rate in images/sec "
                                  "(0 = closed loop)")
    # Policy knobs use dotted --policy.* spellings mirroring the
    # BatchPolicy field names; the historical flat spellings remain as
    # aliases (same dest) so existing scripts and CI keep working.
    serve_bench.add_argument("--policy.replicas", "--replicas",
                             dest="replicas", type=int, default=1,
                             help="plan replicas / worker threads")
    serve_bench.add_argument("--policy.worker-mode", "--worker-mode",
                             dest="worker_mode",
                             choices=("thread", "process"), default="thread",
                             help="run plan replicas as threads (shared GIL) or "
                                  "as worker processes over shared-memory "
                                  "weight arenas")
    serve_bench.add_argument("--policy.workers", "--workers",
                             dest="workers", type=int, default=0,
                             help="worker count for --policy.worker-mode process "
                                  "(0 = use --policy.replicas); clamped to the "
                                  "usable core count")
    serve_bench.add_argument("--policy.max-batch-size", "--max-batch",
                             dest="max_batch", type=int, default=16,
                             help="micro-batcher coalescing limit")
    serve_bench.add_argument("--policy.max-queue-delay-ms", "--max-delay-ms",
                             dest="max_delay_ms", type=float, default=5.0,
                             help="deadline before a partial batch is flushed")
    serve_bench.add_argument("--policy.max-queue-depth", "--queue-depth",
                             dest="queue_depth", type=int, default=64,
                             help="backpressure high-water mark")
    serve_bench.add_argument("--fleet", type=int, default=0,
                             help="serve a multi-model fleet of this many "
                                  "Pareto-ladder widths (max 3) under the "
                                  "mixed-tenant scenario instead of one model")
    serve_bench.add_argument("--assert-slo", type=float, default=0.0,
                             help="with --fleet: exit non-zero unless SLO "
                                  "attainment reaches this fraction (e.g. 0.95)")
    serve_bench.add_argument("--autoscale-max", type=int, default=2,
                             help="with --fleet: autoscaler per-model replica "
                                  "ceiling (min is 1)")
    serve_bench.add_argument("--target-p99-ms", type=float, default=0.0,
                             help="seed the batch policy from the device latency "
                                  "predictors against this p99 budget "
                                  "(overrides --max-batch/--max-delay-ms/--queue-depth)")
    serve_bench.add_argument("--seed", type=int, default=0)
    serve_bench.add_argument("--quantized", action="store_true",
                             help="serve the quantized + autotuned plan instead of "
                                  "the fp32 default, and report the paired serial "
                                  "throughput ratio vs fp32")
    serve_bench.add_argument("--autotune-cache", default="",
                             help="JSON autotune decision cache (with --quantized)")
    serve_bench.add_argument("--autotune-json", default="",
                             help="write the autotune decision table (chosen variant "
                                  "+ per-variant timings per layer) as JSON here "
                                  "(with --quantized)")
    serve_bench.add_argument("--obs-log", default="",
                             help="write an observability JSONL log here")
    serve_bench.add_argument("--json", default="",
                             help="write the throughput/latency report as JSON here")

    obs_parser = sub.add_parser("obs", help="inspect an observability JSONL log")
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser("report", help="render counters, histograms and span tree")
    obs_report.add_argument("log", help="path to an obs JSONL log")
    obs_report.add_argument("--parent", default="experiment.run",
                            help="span whose children define trace coverage")
    obs_export = obs_sub.add_parser("export", help="convert the log to another format")
    obs_export.add_argument("log", help="path to an obs JSONL log")
    obs_export.add_argument("--format", default="chrome", choices=("chrome", "prom"))
    obs_export.add_argument("--out", required=True, help="output file")

    return parser


_COMMANDS = {
    "space": _cmd_space,
    "sweep": _cmd_sweep,
    "pareto": _cmd_pareto,
    "baseline": _cmd_baseline,
    "verify": _cmd_verify,
    "report": _cmd_report,
    "latency": _cmd_latency,
    "energy": _cmd_energy,
    "quantize": _cmd_quantize,
    "profile": _cmd_profile,
    "infer": _cmd_infer,
    "serve-bench": _cmd_serve_bench,
    "obs": _cmd_obs,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure(level=10 if args.verbose else 20)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
