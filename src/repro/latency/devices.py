"""Device profiles for the four nn-Meter predictors (paper Table 2).

Each profile is a roofline-style cost model::

    slowdown  = 1 + working_set_bytes / cache_bytes
    t(kernel) = overhead
              + slowdown * flops / (throughput * efficiency[kernel_type])
              + memory_bytes / bandwidth
              + pool_penalty            (max-pool kernels only)

The ``slowdown`` factor models the collapse of compute efficiency once a
kernel's working set (activations + weights) spills out of the device's
last-level cache — the dominant nonlinearity nn-Meter's per-kernel
regressors learn, and the reason the paper's 11.5-GFLOP worst-case config
costs 30x its 0.74-GFLOP Pareto winners rather than the 15x a pure
roofline would give.

The per-kernel-type efficiency factors are shared across devices (they
capture how well a kernel shape saturates an accelerator); the four
device coefficient sets are **calibrated** by
:func:`repro.latency.calibration.fit_device_profiles` against the paper's
reported latencies (Tables 4-5) and frozen here.  The myriadvpu profile's
large ``pool_penalty_ms`` is the calibration's explanation for the paper's
observation that pooled Pareto models run at ~18 ms vs ~8 ms without
pooling while latency std jumps from ~4.6 to ~16: OpenVINO's Myriad VPU
executes stand-alone MaxPool stages disproportionately slowly, consistent
with its low ±10% accuracy in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.latency.kernels import Kernel

__all__ = ["DeviceProfile", "DEVICE_PROFILES", "KERNEL_EFFICIENCY", "kernel_latency_ms"]

# How efficiently each kernel type uses a device's peak compute.
KERNEL_EFFICIENCY: dict[str, float] = {
    "conv-bn-relu": 1.00,
    "conv-bn": 1.00,
    "fc": 0.25,
    "maxpool": 0.30,
    "global-avgpool": 0.15,
    "add-relu": 0.50,
    "add": 0.50,
    "bn": 0.50,
    "relu": 0.50,
}


@dataclass(frozen=True)
class DeviceProfile:
    """Cost-model coefficients plus the Table-2 identity of one device."""

    name: str
    device: str
    framework: str
    processor: str
    reported_accuracy: float  # Table 2 "+-10% Accuracy" of the real nn-Meter
    throughput_gflops: float  # effective conv compute throughput
    bandwidth_gbps: float  # effective memory bandwidth
    overhead_ms: float  # per-kernel dispatch overhead
    pool_penalty_ms: float  # extra cost of a stand-alone max-pool kernel
    cache_mb: float = 2.0  # last-level cache; working sets beyond it slow compute
    # Relative std of simulated on-device measurements.  Chosen so the
    # fraction of measurements within +-10% of the prediction reproduces
    # Table 2: erf(0.1 / (sigma*sqrt(2))) = 99.0% -> sigma ~= 0.0388,
    # 83.4% -> sigma ~= 0.0724 (the Myriad VPU is the erratic one).
    measurement_noise: float = 0.0388

    def with_coefficients(self, **kwargs: float) -> "DeviceProfile":
        """A copy with some cost coefficients replaced (used by calibration)."""
        return replace(self, **kwargs)


def kernel_latency_ms(kernel: Kernel, profile: DeviceProfile) -> float:
    """Predicted latency of one kernel on one device, in milliseconds."""
    efficiency = KERNEL_EFFICIENCY.get(kernel.kernel_type, 0.5)
    if kernel.conv_kernel > 3:
        # Edge runtimes hit their fast path only for small kernels; larger
        # footprints (e.g. the 7x7 stem) run at a fraction of peak, so a
        # 7x7 stem never beats a 3x3 one despite shrinking the feature map.
        efficiency *= (3.0 / kernel.conv_kernel) ** 3
    slowdown = 1.0 + kernel.memory_bytes / (profile.cache_mb * 1e6)
    compute_ms = slowdown * kernel.flops / (profile.throughput_gflops * efficiency * 1e6)
    memory_ms = kernel.memory_bytes / (profile.bandwidth_gbps * 1e6)
    total = profile.overhead_ms + compute_ms + memory_ms
    if kernel.kernel_type == "maxpool":
        total += profile.pool_penalty_ms
    return total


# Calibrated against the paper's anchors; see calibration.fit_device_profiles
# and EXPERIMENTS.md for the fit protocol and residuals.
DEVICE_PROFILES: dict[str, DeviceProfile] = {
    "cortexA76cpu": DeviceProfile(
        name="cortexA76cpu",
        device="Pixel4",
        framework="TFLite v2.1",
        processor="CortexA76 CPU",
        reported_accuracy=0.990,
        throughput_gflops=415.059,
        bandwidth_gbps=2.9452,
        overhead_ms=0.03507,
        pool_penalty_ms=8.9815,
        cache_mb=0.3414,
    ),
    "adreno640gpu": DeviceProfile(
        name="adreno640gpu",
        device="Mi9",
        framework="TFLite v2.1",
        processor="Adreno 640 GPU",
        reported_accuracy=0.991,
        throughput_gflops=691.832,
        bandwidth_gbps=15.1334,
        overhead_ms=0.03235,
        pool_penalty_ms=0.9671,
        cache_mb=1.3836,
    ),
    "adreno630gpu": DeviceProfile(
        name="adreno630gpu",
        device="Pixel3XL",
        framework="TFLite v2.1",
        processor="Adreno 630 GPU",
        reported_accuracy=0.990,
        throughput_gflops=626.737,
        bandwidth_gbps=12.0752,
        overhead_ms=0.03948,
        pool_penalty_ms=1.2745,
        cache_mb=1.3673,
    ),
    "myriadvpu": DeviceProfile(
        name="myriadvpu",
        device="Intel Movidius NCS2",
        framework="OpenVINO2019R2",
        processor="Myriad VPU",
        reported_accuracy=0.834,
        throughput_gflops=894.419,
        bandwidth_gbps=5.5708,
        overhead_ms=0.05143,
        pool_penalty_ms=37.9538,
        cache_mb=1.0548,
        measurement_noise=0.0724,
    ),
}
