"""Inference energy estimation (library extension, not in the paper).

Edge deployments ultimately budget *energy*, not just latency; this
module extends the kernel cost model with a first-order energy estimate

    E(kernel) = flops * pJ_per_flop + bytes * pJ_per_byte
    E(model)  = sum over kernels + idle_power * predicted_latency

The per-device coefficients below are order-of-magnitude figures for
mobile-class silicon (~1 pJ/FLOP class compute, ~100 pJ/byte DRAM) and
are **synthetic**: the paper reports no energy numbers, so there is
nothing to calibrate against.  Useful for what-if analyses and as a
fourth objective in :mod:`repro.pareto` demos.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.ir import Graph
from repro.latency.devices import DEVICE_PROFILES, DeviceProfile, kernel_latency_ms
from repro.latency.kernels import extract_kernels

__all__ = ["EnergyModel", "ENERGY_MODELS", "estimate_energy_mj"]


@dataclass(frozen=True)
class EnergyModel:
    """First-order energy coefficients of one device."""

    device: str
    pj_per_flop: float
    pj_per_byte: float
    idle_power_mw: float


ENERGY_MODELS: dict[str, EnergyModel] = {
    "cortexA76cpu": EnergyModel("cortexA76cpu", pj_per_flop=2.0, pj_per_byte=120.0, idle_power_mw=350.0),
    "adreno640gpu": EnergyModel("adreno640gpu", pj_per_flop=0.8, pj_per_byte=100.0, idle_power_mw=450.0),
    "adreno630gpu": EnergyModel("adreno630gpu", pj_per_flop=0.9, pj_per_byte=110.0, idle_power_mw=420.0),
    "myriadvpu": EnergyModel("myriadvpu", pj_per_flop=0.5, pj_per_byte=90.0, idle_power_mw=1200.0),
}


def estimate_energy_mj(graph: Graph, device: str = "cortexA76cpu") -> float:
    """Estimated single-inference energy in millijoules on ``device``."""
    if device not in ENERGY_MODELS:
        raise KeyError(f"no energy model for {device!r}; known: {sorted(ENERGY_MODELS)}")
    model = ENERGY_MODELS[device]
    profile: DeviceProfile = DEVICE_PROFILES[device]
    kernels = extract_kernels(graph)
    dynamic_pj = sum(k.flops * model.pj_per_flop + k.memory_bytes * model.pj_per_byte for k in kernels)
    latency_ms = sum(kernel_latency_ms(k, profile) for k in kernels)
    idle_mj = model.idle_power_mw * latency_ms / 1e6  # mW * ms -> uJ -> mJ
    return dynamic_pj / 1e9 + idle_mj
