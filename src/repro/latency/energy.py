"""Inference energy estimation (library extension, not in the paper).

Edge deployments ultimately budget *energy*, not just latency; this
module extends the kernel cost model with a first-order energy estimate

    E(kernel) = flops * pJ_per_flop + bytes * pJ_per_byte
    E(model)  = sum over kernels + idle_power * predicted_latency

The per-device coefficients below are order-of-magnitude figures for
mobile-class silicon (~1 pJ/FLOP class compute, ~100 pJ/byte DRAM) and
are **synthetic**: the paper reports no energy numbers, so there is
nothing to calibrate against.  Useful for what-if analyses and as a
fourth objective in :mod:`repro.pareto` demos.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.ir import Graph
from repro.latency.devices import DEVICE_PROFILES, DeviceProfile, kernel_latency_ms
from repro.latency.fusion import KERNEL_VARIANTS
from repro.latency.kernels import Kernel, extract_kernels

__all__ = [
    "EnergyModel",
    "ENERGY_MODELS",
    "VariantCostFactors",
    "VARIANT_COST_FACTORS",
    "estimate_energy_mj",
    "kernel_energy_mj",
    "energy_report",
]


@dataclass(frozen=True)
class EnergyModel:
    """First-order energy coefficients of one device."""

    device: str
    pj_per_flop: float
    pj_per_byte: float
    idle_power_mw: float


ENERGY_MODELS: dict[str, EnergyModel] = {
    "cortexA76cpu": EnergyModel("cortexA76cpu", pj_per_flop=2.0, pj_per_byte=120.0, idle_power_mw=350.0),
    "adreno640gpu": EnergyModel("adreno640gpu", pj_per_flop=0.8, pj_per_byte=100.0, idle_power_mw=450.0),
    "adreno630gpu": EnergyModel("adreno630gpu", pj_per_flop=0.9, pj_per_byte=110.0, idle_power_mw=420.0),
    "myriadvpu": EnergyModel("myriadvpu", pj_per_flop=0.5, pj_per_byte=90.0, idle_power_mw=1200.0),
}


@dataclass(frozen=True)
class VariantCostFactors:
    """TEA-DNN-style scaling of a kernel's energy terms under one variant.

    Multiplies the baseline (fp32 im2col) cost features: ``flops`` is
    the arithmetic-count ratio, ``bytes`` the memory-traffic ratio, and
    ``pj_per_flop`` the per-operation energy ratio (int8 MACs cost a
    fraction of an fp32 FMA on silicon with integer dot-product units).
    """

    flops: float = 1.0
    bytes: float = 1.0
    pj_per_flop: float = 1.0


#: Energy factors per kernel variant.  Keys mirror
#: :data:`repro.latency.fusion.KERNEL_VARIANTS` exactly (checked in
#: ``tests/test_latency.py``) — the same matching invariant that ties
#: the latency predictor to the compiled plan ties this table to every
#: autotuner decision, so an energy estimate exists for any plan the
#: deploy compiler can emit.  The fp32 defaults are identity (the
#: baseline the coefficients of :data:`ENERGY_MODELS` were set for);
#: Winograd F(2x2, 3x3) trades a 2.25x multiply reduction (16 vs 36
#: multiplies per output tile) for slightly higher activation traffic;
#: int8 kernels keep the multiply count but quarter the bytes moved and
#: the per-MAC energy (TEA-DNN's int8 assumption).
VARIANT_COST_FACTORS: dict[str, VariantCostFactors] = {
    "conv.im2col.f32": VariantCostFactors(),
    "conv.winograd2x2.f32": VariantCostFactors(flops=16.0 / 36.0, bytes=1.15),
    "conv.im2col.int8": VariantCostFactors(bytes=0.25, pj_per_flop=0.25),
    "gemm.f32": VariantCostFactors(),
    "gemm.int8": VariantCostFactors(bytes=0.25, pj_per_flop=0.25),
    "add.f32": VariantCostFactors(),
    "add.int8": VariantCostFactors(bytes=0.25, pj_per_flop=0.5),
    "maxpool.f32": VariantCostFactors(),
    "maxpool.u8": VariantCostFactors(bytes=0.25, pj_per_flop=0.5),
    "gap.f32": VariantCostFactors(),
    "gap.u8": VariantCostFactors(bytes=0.25, pj_per_flop=0.5),
    "flatten.f32": VariantCostFactors(),
    "flatten.u8": VariantCostFactors(bytes=0.25),
    "relu.f32": VariantCostFactors(),
    "relu.u8": VariantCostFactors(bytes=0.25, pj_per_flop=0.5),
    "bn.f32": VariantCostFactors(),
}

#: Baseline variant per lead op type (first entry of KERNEL_VARIANTS).
_DEFAULT_VARIANT = {op: names[0] for op, names in KERNEL_VARIANTS.items()}

#: Kernel-type -> lead op type, to default a variant when none is given.
_KERNEL_TYPE_LEAD = {
    "conv-bn-relu": "Conv",
    "conv-bn": "Conv",
    "add-relu": "Add",
    "add": "Add",
    "maxpool": "MaxPool",
    "global-avgpool": "GlobalAveragePool",
    "fc": "Gemm",
    "bn": "BatchNormalization",
    "relu": "Relu",
}


def kernel_energy_mj(
    kernel: Kernel, device: str = "cortexA76cpu", variant: str | None = None
) -> float:
    """Dynamic (compute + memory) energy of one kernel, in millijoules."""
    model = ENERGY_MODELS[device]
    if variant is None:
        lead = _KERNEL_TYPE_LEAD.get(kernel.kernel_type, "Relu")
        variant = _DEFAULT_VARIANT.get(lead, "relu.f32")
    if variant not in VARIANT_COST_FACTORS:
        raise KeyError(
            f"no energy factors for kernel variant {variant!r}; "
            f"known: {sorted(VARIANT_COST_FACTORS)}"
        )
    f = VARIANT_COST_FACTORS[variant]
    pj = (
        kernel.flops * f.flops * model.pj_per_flop * f.pj_per_flop
        + kernel.memory_bytes * f.bytes * model.pj_per_byte
    )
    return pj / 1e9


def estimate_energy_mj(
    graph: Graph,
    device: str = "cortexA76cpu",
    variants: "dict[str, str] | None" = None,
) -> float:
    """Estimated single-inference energy in millijoules on ``device``.

    ``variants`` (kernel name -> variant, e.g. an
    :class:`repro.deploy.autotune.AutotuneResult` mapping or a compiled
    plan's :meth:`~repro.deploy.plan.InferencePlan.kernel_variants`)
    re-prices each kernel under the variant that actually executes;
    omitted kernels price at their fp32 default, so the no-argument call
    is unchanged.
    """
    if device not in ENERGY_MODELS:
        raise KeyError(f"no energy model for {device!r}; known: {sorted(ENERGY_MODELS)}")
    model = ENERGY_MODELS[device]
    profile: DeviceProfile = DEVICE_PROFILES[device]
    variants = variants or {}
    kernels = extract_kernels(graph)
    dynamic_mj = sum(kernel_energy_mj(k, device, variants.get(k.name)) for k in kernels)
    latency_ms = sum(kernel_latency_ms(k, profile) for k in kernels)
    idle_mj = model.idle_power_mw * latency_ms / 1e6  # mW * ms -> uJ -> mJ
    return dynamic_mj + idle_mj


def energy_report(
    graph: Graph,
    device: str = "cortexA76cpu",
    variants: "dict[str, str] | None" = None,
) -> list[dict]:
    """Per-kernel energy rows (name, variant, dynamic mJ) for reports."""
    variants = variants or {}
    rows = []
    for k in extract_kernels(graph):
        variant = variants.get(k.name)
        if variant is None:
            lead = _KERNEL_TYPE_LEAD.get(k.kernel_type, "Relu")
            variant = _DEFAULT_VARIANT.get(lead, "relu.f32")
        rows.append(
            {
                "kernel": k.name,
                "kernel_type": k.kernel_type,
                "variant": variant,
                "energy_mj": kernel_energy_mj(k, device, variant),
            }
        )
    return rows
