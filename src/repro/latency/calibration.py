"""Calibration of the device cost models against the paper's anchors.

The paper reports mean/std latencies (over its four nn-Meter predictors)
for a handful of concrete configurations: the stock ResNet-18 at 5 and 7
input channels (Table 5) and the five Pareto-optimal models (Table 4);
Table 3 adds the sweep-wide maximum.  :func:`fit_device_profiles` treats
the 16 device coefficients (throughput, bandwidth, per-kernel overhead and
max-pool penalty for each of the four devices) as unknowns and solves a
log-domain least-squares problem matching those anchors, with a weak prior
pulling toward physically plausible initial values.

The fitted coefficients are frozen in
:data:`repro.latency.devices.DEVICE_PROFILES`; re-running the fit is only
needed if the cost-model *form* changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from repro.graph.trace import trace_model
from repro.latency.devices import DEVICE_PROFILES, DeviceProfile, kernel_latency_ms
from repro.latency.kernels import Kernel, extract_kernels
from repro.nn.resnet import SearchableResNet18

__all__ = ["Anchor", "PAPER_ANCHORS", "fit_device_profiles", "calibration_report"]

_COEFF_NAMES = ("throughput_gflops", "bandwidth_gbps", "overhead_ms", "pool_penalty_ms", "cache_mb")


@dataclass(frozen=True)
class Anchor:
    """A model configuration with its paper-reported latency statistics."""

    label: str
    config: dict[str, int]  # SearchableResNet18 kwargs (incl. in_channels)
    mean_ms: float
    std_ms: float | None = None  # None: only the mean is anchored
    weight: float = 1.0


def _cfg(channels, kernel, stride, padding, pool, kpool, spool, feat) -> dict[str, int]:
    return {
        "in_channels": channels,
        "kernel_size": kernel,
        "stride": stride,
        "padding": padding,
        "pool_choice": pool,
        "kernel_size_pool": kpool,
        "stride_pool": spool,
        "initial_output_feature": feat,
    }


#: The paper's latency anchors (Tables 3-5).  Table 4 rows 2 and 4 are the
#: same architecture measured twice (8.23/8.13 ms) — anchored once at the
#: average.  The Table-3 maximum (249.56 ms) is attributed to the most
#: expensive point of the search space: 7 channels, 7x7 stride-1 stem,
#: no pooling, 64 initial features.
PAPER_ANCHORS: tuple[Anchor, ...] = (
    Anchor("baseline-5ch", _cfg(5, 7, 2, 3, 1, 3, 2, 64), 31.91, 20.36),
    Anchor("baseline-7ch", _cfg(7, 7, 2, 3, 1, 3, 2, 64), 32.46, 20.96),
    Anchor("pareto-A", _cfg(7, 3, 2, 1, 0, 3, 2, 32), 8.19, 4.59),
    Anchor("pareto-BD", _cfg(5, 3, 2, 1, 0, 3, 2, 32), 8.18, 4.60),
    Anchor("pareto-C", _cfg(7, 3, 2, 1, 1, 3, 2, 32), 18.30, 16.02),
    Anchor("pareto-E", _cfg(5, 3, 2, 1, 1, 3, 1, 32), 18.24, 15.96),
    Anchor("sweep-max", _cfg(7, 7, 1, 3, 0, 3, 2, 64), 249.56, None, weight=1.0),
)


def _anchor_kernels(anchor: Anchor, input_hw: tuple[int, int]) -> list[Kernel]:
    model = SearchableResNet18(num_classes=2, seed=0, **anchor.config)
    return extract_kernels(trace_model(model, input_hw=input_hw))


def _profiles_from_vector(x: np.ndarray, base: dict[str, DeviceProfile]) -> dict[str, DeviceProfile]:
    profiles: dict[str, DeviceProfile] = {}
    values = np.exp(x).reshape(len(base), len(_COEFF_NAMES))
    for row, (name, profile) in zip(values, base.items()):
        profiles[name] = profile.with_coefficients(**dict(zip(_COEFF_NAMES, map(float, row))))
    return profiles


def _vector_from_profiles(profiles: dict[str, DeviceProfile]) -> np.ndarray:
    rows = [[getattr(p, c) for c in _COEFF_NAMES] for p in profiles.values()]
    return np.log(np.asarray(rows, dtype=float).reshape(-1))


def fit_device_profiles(
    anchors: tuple[Anchor, ...] = PAPER_ANCHORS,
    base: dict[str, DeviceProfile] | None = None,
    input_hw: tuple[int, int] = (100, 100),
    prior_weight: float = 0.05,
) -> dict[str, DeviceProfile]:
    """Fit the 16 device coefficients to the paper's latency anchors.

    Residuals are relative errors of the anchored means and stds, plus a
    weak log-domain prior toward the initial coefficients (the problem is
    otherwise mildly underdetermined).
    """
    base = dict(DEVICE_PROFILES) if base is None else dict(base)
    kernel_lists = [_anchor_kernels(a, input_hw) for a in anchors]
    x0 = _vector_from_profiles(base)

    def residuals(x: np.ndarray) -> np.ndarray:
        profiles = _profiles_from_vector(x, base)
        res: list[float] = []
        for anchor, kernels in zip(anchors, kernel_lists):
            per_device = [
                sum(kernel_latency_ms(k, p) for k in kernels) for p in profiles.values()
            ]
            mean = float(np.mean(per_device))
            res.append(anchor.weight * (mean - anchor.mean_ms) / anchor.mean_ms)
            if anchor.std_ms is not None:
                std = float(np.std(per_device))
                res.append(anchor.weight * (std - anchor.std_ms) / anchor.std_ms)
        res.extend(prior_weight * (x - x0))
        return np.asarray(res)

    solution = least_squares(residuals, x0, method="lm", max_nfev=4000)
    return _profiles_from_vector(solution.x, base)


def calibration_report(
    profiles: dict[str, DeviceProfile] | None = None,
    anchors: tuple[Anchor, ...] = PAPER_ANCHORS,
    input_hw: tuple[int, int] = (100, 100),
) -> list[dict[str, float | str]]:
    """Paper-vs-predicted table for every anchor under ``profiles``."""
    profiles = DEVICE_PROFILES if profiles is None else profiles
    rows: list[dict[str, float | str]] = []
    for anchor in anchors:
        kernels = _anchor_kernels(anchor, input_hw)
        per_device = [sum(kernel_latency_ms(k, p) for k in kernels) for p in profiles.values()]
        rows.append(
            {
                "anchor": anchor.label,
                "paper_mean": anchor.mean_ms,
                "pred_mean": float(np.mean(per_device)),
                "paper_std": anchor.std_ms if anchor.std_ms is not None else float("nan"),
                "pred_std": float(np.std(per_device)),
            }
        )
    return rows
