"""Human-readable latency breakdowns."""

from __future__ import annotations

from repro.graph.ir import Graph
from repro.latency.devices import DEVICE_PROFILES, DeviceProfile, kernel_latency_ms
from repro.latency.kernels import extract_kernels
from repro.utils.tables import render_table

__all__ = ["latency_breakdown", "breakdown_table"]


def latency_breakdown(graph: Graph, profile: DeviceProfile) -> list[dict]:
    """Per-kernel latency rows for one device, slowest first."""
    kernels = extract_kernels(graph)
    costs = [(k, kernel_latency_ms(k, profile)) for k in kernels]
    total = sum(ms for _, ms in costs) or 1.0
    rows = []
    for kernel, ms in sorted(costs, key=lambda kc: -kc[1]):
        rows.append(
            {
                "kernel": kernel.name,
                "type": kernel.kernel_type,
                "ms": round(ms, 4),
                "share": f"{100.0 * ms / total:.1f}%",
                "mflops": round(kernel.flops / 1e6, 2),
                "kb_moved": round(kernel.memory_bytes / 1e3, 1),
            }
        )
    return rows


def breakdown_table(graph: Graph, device: str = "cortexA76cpu", top: int = 10) -> str:
    """Rendered top-``top`` kernel table for a device."""
    profile = DEVICE_PROFILES[device]
    rows = latency_breakdown(graph, profile)
    total = sum(r["ms"] for r in rows)
    return render_table(rows[:top], title=f"Latency breakdown on {device} (total {total:.2f} ms)")
