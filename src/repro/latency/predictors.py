"""Per-device latency predictors and the paper's 4-device aggregation.

The paper's latency objective is the *mean* predicted latency across the
four nn-Meter predictors, with its standard deviation reported as
``lat_std`` (Tables 4-5).  :func:`predict_all_devices` reproduces exactly
that aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.ir import Graph
from repro.graph.trace import trace_model
from repro.latency.devices import DEVICE_PROFILES, DeviceProfile, kernel_latency_ms
from repro.latency.kernels import Kernel, extract_kernels
from repro.nn.resnet import SearchableResNet18

__all__ = ["LatencyPredictor", "LatencySummary", "predict_all_devices", "batch_latency_ms", "simulate_measurement"]


class LatencyPredictor:
    """Predicts single-image inference latency for one device profile."""

    def __init__(self, profile: DeviceProfile) -> None:
        self.profile = profile

    @property
    def name(self) -> str:
        """Predictor name (e.g. ``cortexA76cpu``)."""
        return self.profile.name

    def predict_kernels(self, kernels: list[Kernel]) -> list[float]:
        """Per-kernel latencies in ms, in execution order."""
        return [kernel_latency_ms(k, self.profile) for k in kernels]

    def predict_graph(self, graph: Graph) -> float:
        """Total predicted latency (ms) for a traced model graph."""
        return float(sum(self.predict_kernels(extract_kernels(graph))))

    def predict_model(self, model: SearchableResNet18, input_hw: tuple[int, int] = (100, 100)) -> float:
        """Trace ``model`` and predict its latency (ms)."""
        return self.predict_graph(trace_model(model, input_hw=input_hw))

    def __repr__(self) -> str:
        return f"LatencyPredictor({self.name})"


@dataclass(frozen=True)
class LatencySummary:
    """The paper's latency objective: cross-device mean and spread."""

    per_device_ms: dict[str, float]

    @property
    def mean_ms(self) -> float:
        """Mean over the four predictors ('latency' column)."""
        return float(np.mean(list(self.per_device_ms.values())))

    @property
    def std_ms(self) -> float:
        """Population std over the predictors ('lat_std' column)."""
        return float(np.std(list(self.per_device_ms.values())))

    def as_dict(self) -> dict[str, float]:
        """Flat record: per-device values plus mean/std."""
        out = dict(self.per_device_ms)
        out["latency_ms"] = self.mean_ms
        out["lat_std"] = self.std_ms
        return out


def batch_latency_ms(graph: Graph, batch: int, profile: DeviceProfile) -> float:
    """Predicted latency of a batched forward pass (library extension).

    The paper (like nn-Meter) predicts single-image latency: its Table-5
    values are identical across batch sizes.  For throughput planning,
    this extension scales each kernel's compute and memory terms by the
    batch while keeping per-kernel dispatch overhead and pool penalties
    constant — so batching amortizes fixed costs but not bandwidth.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    from repro.latency.devices import KERNEL_EFFICIENCY

    total = 0.0
    for kernel in extract_kernels(graph):
        efficiency = KERNEL_EFFICIENCY.get(kernel.kernel_type, 0.5)
        if kernel.conv_kernel > 3:
            efficiency *= (3.0 / kernel.conv_kernel) ** 3
        # Runtimes tile batched work per image, so the cache-pressure
        # slowdown is that of the single-image working set.
        slowdown = 1.0 + kernel.memory_bytes / (profile.cache_mb * 1e6)
        compute_ms = batch * slowdown * kernel.flops / (profile.throughput_gflops * efficiency * 1e6)
        activation_bytes = kernel.input_bytes + kernel.output_bytes
        memory_ms = (batch * activation_bytes + kernel.weight_bytes) / (profile.bandwidth_gbps * 1e6)
        total += profile.overhead_ms + compute_ms + memory_ms
        if kernel.kernel_type == "maxpool":
            total += profile.pool_penalty_ms
    return float(total)


def simulate_measurement(
    predicted_ms: float,
    profile: DeviceProfile,
    rng: np.random.Generator,
) -> float:
    """A simulated on-device latency measurement for a prediction.

    Real nn-Meter validates its predictors against hardware runs; this
    library has no hardware, so measurements are drawn around the
    prediction with the device's characteristic variability
    (``measurement_noise``), calibrated so the +-10% accuracy statistic
    reproduces paper Table 2.
    """
    return float(predicted_ms * max(rng.normal(1.0, profile.measurement_noise), 0.05))


def predict_all_devices(
    graph: Graph,
    profiles: dict[str, DeviceProfile] | None = None,
) -> LatencySummary:
    """Predict a traced graph's latency on every device profile."""
    profiles = DEVICE_PROFILES if profiles is None else profiles
    kernels = extract_kernels(graph)
    per_device = {
        name: float(sum(kernel_latency_ms(k, profile) for k in kernels))
        for name, profile in profiles.items()
    }
    return LatencySummary(per_device_ms=per_device)
