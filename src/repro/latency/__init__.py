"""Kernel-level inference latency prediction (nn-Meter substitute).

nn-Meter predicts model latency by decomposing the model graph into fused
*kernels* (the units edge runtimes actually schedule) and summing per-kernel
costs from device-specific regressors.  This subpackage re-implements that
architecture:

- :mod:`~repro.latency.fusion` — conv-bn-relu / add-relu fusion rules;
- :mod:`~repro.latency.kernels` — kernel extraction from the graph IR;
- :mod:`~repro.latency.devices` — the four device profiles of paper
  Table 2 (cortexA76cpu, adreno640gpu, adreno630gpu, myriadvpu) with
  roofline cost coefficients;
- :mod:`~repro.latency.predictors` — per-device predictors and the
  4-predictor mean/std aggregation the paper reports;
- :mod:`~repro.latency.calibration` — least-squares fitting of device
  coefficients against the paper's anchor latencies (the frozen defaults
  in ``devices.py`` come from this fit);
- :mod:`~repro.latency.registry` — name-based predictor lookup plus the
  Table-2 metadata.
"""

from repro.latency.kernels import Kernel, extract_kernels
from repro.latency.fusion import (
    FUSION_RULES,
    KERNEL_VARIANTS,
    FusedOp,
    fuse_graph,
    fusion_rule,
    variants_for,
)
from repro.latency.devices import DeviceProfile, DEVICE_PROFILES
from repro.latency.predictors import LatencyPredictor, predict_all_devices, LatencySummary
from repro.latency.registry import get_predictor, list_predictors, PREDICTOR_METADATA
from repro.latency.selection import (
    ModelCandidate,
    ModelSelection,
    NoFeasibleModel,
    latency_table,
    select_model,
)
from repro.latency.report import breakdown_table, latency_breakdown
from repro.latency.energy import (
    ENERGY_MODELS,
    VARIANT_COST_FACTORS,
    EnergyModel,
    VariantCostFactors,
    energy_report,
    estimate_energy_mj,
    kernel_energy_mj,
)

__all__ = [
    "latency_breakdown",
    "breakdown_table",
    "EnergyModel",
    "ENERGY_MODELS",
    "VariantCostFactors",
    "VARIANT_COST_FACTORS",
    "energy_report",
    "estimate_energy_mj",
    "kernel_energy_mj",
    "KERNEL_VARIANTS",
    "variants_for",
    "Kernel",
    "extract_kernels",
    "fuse_graph",
    "FusedOp",
    "FUSION_RULES",
    "fusion_rule",
    "DeviceProfile",
    "DEVICE_PROFILES",
    "LatencyPredictor",
    "predict_all_devices",
    "LatencySummary",
    "get_predictor",
    "list_predictors",
    "PREDICTOR_METADATA",
    "ModelCandidate",
    "ModelSelection",
    "NoFeasibleModel",
    "latency_table",
    "select_model",
]
