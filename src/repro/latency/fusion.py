"""Operator fusion: group IR nodes into runtime kernels.

Edge inference runtimes (TFLite, OpenVINO) execute *fused* kernels —
a convolution with its following batch-norm and ReLU is one dispatch.
nn-Meter's kernel detection mirrors this; we implement the same rules:

- ``CONV (+ BATCH_NORM) (+ RELU)`` -> one kernel (linear chains only);
- ``ADD (+ RELU)`` -> one kernel;
- every other op is its own kernel.

Fusion only applies along single-consumer edges: a tensor consumed by two
ops (e.g. the block input feeding both conv1 and the skip path) must be
materialized and cannot be folded away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.ir import Graph, Node, OpType

__all__ = [
    "FUSION_RULES",
    "KERNEL_VARIANTS",
    "FusedOp",
    "fuse_graph",
    "fusion_rule",
    "variants_for",
]

#: Canonical fusion rule table, keyed by the onnxlite operator-type
#: strings the exporter emits.  Both the latency predictors (this module)
#: and the deploy compiler (:mod:`repro.deploy.passes`) consume this
#: table, so the kernels nn-Meter-style prediction assumes are exactly
#: the kernels the compiled runtime executes.
FUSION_RULES: dict[str, tuple[str, ...]] = {
    "Conv": ("BatchNormalization", "Relu"),
    "Add": ("Relu",),
}

#: Kernel-variant vocabulary, keyed by lead operator type.  This is the
#: *matching invariant* between prediction and execution: every variant
#: name the deploy compiler can stamp on a :class:`PlanStep` (including
#: every autotuner decision) appears here, and the per-variant energy
#: model (:mod:`repro.latency.energy`) prices exactly these names — so a
#: predicted kernel and the kernel the plan actually runs can always be
#: joined on ``(op_type, variant)``.  The first entry of each tuple is
#: the operator's default (fp32) variant.
KERNEL_VARIANTS: dict[str, tuple[str, ...]] = {
    "Conv": ("conv.im2col.f32", "conv.winograd2x2.f32", "conv.im2col.int8"),
    "Gemm": ("gemm.f32", "gemm.int8"),
    "Add": ("add.f32", "add.int8"),
    "MaxPool": ("maxpool.f32", "maxpool.u8"),
    "GlobalAveragePool": ("gap.f32", "gap.u8"),
    "Flatten": ("flatten.f32", "flatten.u8"),
    "Relu": ("relu.f32", "relu.u8"),
    "BatchNormalization": ("bn.f32",),
}


def variants_for(
    op_type: str,
    attrs: dict | None = None,
    quantized: bool = False,
) -> tuple[str, ...]:
    """The kernel variants eligible for one operator instance.

    Parameters
    ----------
    op_type:
        onnxlite operator-type string (a :data:`KERNEL_VARIANTS` key).
    attrs:
        The operator's attributes; Winograd F(2x2, 3x3) is offered only
        for stride-1 3x3 convolutions.
    quantized:
        Whether the integer path is available for this instance (int8
        weights *and* activation calibration present) — gates the
        ``*.int8`` / ``*.u8`` variants.
    """
    names = KERNEL_VARIANTS.get(op_type, ())
    attrs = attrs or {}
    eligible = []
    for name in names:
        if name == "conv.winograd2x2.f32":
            if int(attrs.get("kernel", 0)) != 3 or int(attrs.get("stride", 0)) != 1:
                continue
        if (name.endswith(".int8") or name.endswith(".u8")) and not quantized:
            continue
        eligible.append(name)
    return tuple(eligible)

#: IR op type <-> onnxlite operator-type string (the fusable subset).
_IR_TO_ONNX = {
    OpType.CONV: "Conv",
    OpType.BATCH_NORM: "BatchNormalization",
    OpType.RELU: "Relu",
    OpType.ADD: "Add",
}
_ONNX_TO_IR = {name: op for op, name in _IR_TO_ONNX.items()}


def fusion_rule(op: OpType | str) -> tuple[OpType, ...]:
    """Fusable follower chain for a lead operator (empty if none).

    Accepts either an IR :class:`OpType` or an onnxlite operator-type
    string; returns the follower chain as IR op types, in chain order.
    """
    key = _IR_TO_ONNX.get(op, op) if isinstance(op, OpType) else op
    return tuple(_ONNX_TO_IR[name] for name in FUSION_RULES.get(key, ()))


# Fusable follower sets, in chain order (derived from FUSION_RULES).
_CONV_FOLLOWERS = fusion_rule(OpType.CONV)
_ADD_FOLLOWERS = fusion_rule(OpType.ADD)


@dataclass
class FusedOp:
    """A fused kernel: its lead node plus the folded followers."""

    lead: Node
    folded: list[Node] = field(default_factory=list)

    @property
    def nodes(self) -> list[Node]:
        """All IR nodes covered by this kernel, lead first."""
        return [self.lead, *self.folded]

    @property
    def out_shape(self) -> tuple[int, ...]:
        """Output shape of the fused kernel (last folded node's output)."""
        return self.nodes[-1].out_shape

    @property
    def name(self) -> str:
        """Kernel name, derived from the lead node."""
        return self.lead.name


def _chain_follower(graph: Graph, node: Node, allowed: tuple[OpType, ...]) -> Node | None:
    """The unique consumer of ``node`` if it is fusable, else None."""
    succs = graph.successors(node)
    if len(succs) != 1:
        return None
    follower = succs[0]
    if follower.op not in allowed:
        return None
    # The follower must have node as its only producer (ADD never fuses in).
    if len(graph.predecessors(follower)) != 1:
        return None
    return follower


def fuse_graph(graph: Graph) -> list[FusedOp]:
    """Partition the IR into fused kernels, in topological order.

    Every non-IO node lands in exactly one :class:`FusedOp`.
    """
    consumed: set[str] = set()
    fused: list[FusedOp] = []
    for node in graph.topological():
        if node.op in (OpType.INPUT, OpType.OUTPUT) or node.name in consumed:
            continue
        op = FusedOp(lead=node)
        consumed.add(node.name)
        if node.op is OpType.CONV:
            followers = _CONV_FOLLOWERS
        elif node.op is OpType.ADD:
            followers = _ADD_FOLLOWERS
        else:
            followers = ()
        current = node
        remaining = list(followers)
        while remaining:
            follower = _chain_follower(graph, current, (remaining[0],))
            if follower is None:
                # Allow skipping an optional stage (e.g. conv followed
                # directly by relu with no bn) by trying the next type.
                remaining.pop(0)
                continue
            op.folded.append(follower)
            consumed.add(follower.name)
            current = follower
            remaining.pop(0)
        fused.append(op)
    return fused
