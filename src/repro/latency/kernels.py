"""Kernel records: what the per-device cost models consume.

A :class:`Kernel` carries exactly the features nn-Meter-style predictors
regress on: kernel type, arithmetic work, and the bytes moved through the
memory system (activations in/out plus weights).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.graph.flops import node_flops
from repro.graph.ir import Graph, Node, OpType
from repro.latency.fusion import FusedOp, fuse_graph

__all__ = ["Kernel", "KernelType", "extract_kernels", "BYTES_PER_ELEMENT"]

BYTES_PER_ELEMENT = 4  # float32 inference

# Kernel-type vocabulary (fused names match nn-Meter's kernel taxonomy).
KernelType = str
CONV_BN_RELU = "conv-bn-relu"
CONV_BN = "conv-bn"
ADD_RELU = "add-relu"
MAX_POOL = "maxpool"
GLOBAL_AVG_POOL = "global-avgpool"
FC = "fc"
BATCH_NORM = "bn"
RELU = "relu"
ADD = "add"


def _numel(shape: tuple[int, ...]) -> int:
    n = 1
    for d in shape:
        n *= d
    return n


@dataclass(frozen=True)
class Kernel:
    """One schedulable kernel and its cost-model features.

    ``conv_kernel`` is the spatial kernel size for convolution kernels
    (0 otherwise); device cost models derate compute efficiency for large
    kernels, which edge runtimes execute far less efficiently than the
    heavily optimized 3x3 path.
    """

    name: str
    kernel_type: KernelType
    flops: int
    input_bytes: int
    output_bytes: int
    weight_bytes: int
    conv_kernel: int = 0

    @property
    def memory_bytes(self) -> int:
        """Total bytes through the memory hierarchy for one invocation."""
        return self.input_bytes + self.output_bytes + self.weight_bytes


def _kernel_type(op: FusedOp) -> KernelType:
    lead = op.lead.op
    folded = tuple(n.op for n in op.folded)
    if lead is OpType.CONV:
        if OpType.RELU in folded:
            return CONV_BN_RELU
        if OpType.BATCH_NORM in folded:
            return CONV_BN
        return CONV_BN  # bare conv costs like conv-bn (bn folds at inference)
    if lead is OpType.ADD:
        return ADD_RELU if folded else ADD
    if lead is OpType.MAX_POOL:
        return MAX_POOL
    if lead is OpType.GLOBAL_AVG_POOL:
        return GLOBAL_AVG_POOL
    if lead is OpType.FC:
        return FC
    if lead is OpType.BATCH_NORM:
        return BATCH_NORM
    if lead is OpType.RELU:
        return RELU
    if lead is OpType.FLATTEN:
        return RELU  # pure data movement; costed like an elementwise op
    raise ValueError(f"cannot type kernel for op {lead}")


def _kernel_from_fused(graph: Graph, op: FusedOp) -> Kernel:
    lead = op.lead
    flops = sum(node_flops(n) for n in op.nodes)
    # ADD kernels read two producer tensors.
    n_inputs = max(len(graph.predecessors(lead)), 1)
    input_bytes = n_inputs * _numel(lead.in_shape) * BYTES_PER_ELEMENT
    output_bytes = _numel(op.out_shape) * BYTES_PER_ELEMENT
    weight_bytes = sum(n.params for n in op.nodes) * BYTES_PER_ELEMENT
    return Kernel(
        name=lead.name,
        kernel_type=_kernel_type(op),
        flops=flops,
        input_bytes=input_bytes,
        output_bytes=output_bytes,
        weight_bytes=weight_bytes,
        conv_kernel=int(lead.attrs.get("kernel", 0)) if lead.op is OpType.CONV else 0,
    )


def extract_kernels(graph: Graph) -> list[Kernel]:
    """Fuse the IR and return its kernel list in execution order."""
    return [_kernel_from_fused(graph, op) for op in fuse_graph(graph)]


def total_flops(kernels: Iterable[Kernel]) -> int:
    """Sum of kernel FLOPs (equals the unfused graph total)."""
    return sum(k.flops for k in kernels)
