"""Name-based predictor lookup and the Table-2 metadata view."""

from __future__ import annotations

from repro.latency.devices import DEVICE_PROFILES
from repro.latency.predictors import LatencyPredictor

__all__ = ["get_predictor", "list_predictors", "PREDICTOR_METADATA"]


def list_predictors() -> list[str]:
    """Names of all available device predictors."""
    return list(DEVICE_PROFILES)


def get_predictor(name: str) -> LatencyPredictor:
    """Build the predictor for a device by name (case-insensitive)."""
    key = name.strip()
    for candidate in DEVICE_PROFILES:
        if candidate.lower() == key.lower():
            return LatencyPredictor(DEVICE_PROFILES[candidate])
    raise KeyError(f"unknown predictor {name!r}; known: {list_predictors()}")


#: Paper Table 2, reconstructed from the device profiles.
PREDICTOR_METADATA: list[dict[str, object]] = [
    {
        "hardware_name": profile.name,
        "device": profile.device,
        "framework": profile.framework,
        "processor": profile.processor,
        "accuracy_pm10": f"{profile.reported_accuracy * 100:.2f}%",
    }
    for profile in DEVICE_PROFILES.values()
]
