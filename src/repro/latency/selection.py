"""Budget→model selection: the fleet router's decision function.

The paper produces a *Pareto front* of models traded off across
accuracy and per-device latency; at serving time a request arrives with
an accuracy floor and a latency budget for a declared device.  This
module turns the front into a routing table:

- :func:`latency_table` summarizes a model graph into the per-device
  prediction dict the router compares budgets against (the same
  nn-Meter-style predictors that drove the search);
- :class:`ModelCandidate` is one registered model (name, accuracy,
  per-device predicted ms);
- :func:`select_model` applies the routing rule — among candidates with
  ``accuracy >= floor`` and ``predicted(device) <= budget``, pick the
  one with the lowest *effective* cost, where effective cost is the
  prediction inflated by the candidate's current queue load so traffic
  spills to the next-cheapest feasible model instead of convoying.

Pure functions over plain data: no server state, trivially testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.graph.ir import Graph
from repro.latency.devices import DEVICE_PROFILES, DeviceProfile
from repro.latency.predictors import predict_all_devices

__all__ = [
    "ModelCandidate",
    "ModelSelection",
    "NoFeasibleModel",
    "latency_table",
    "select_model",
]


class NoFeasibleModel(RuntimeError):
    """No registered model satisfies the request's accuracy floor."""


def latency_table(
    graph: Graph,
    profiles: Mapping[str, DeviceProfile] | None = None,
) -> dict[str, float]:
    """Per-device predicted latency (ms) plus the ``"mean"`` aggregate.

    The dict's device keys match ``repro.latency.DEVICE_PROFILES`` and
    are what a :class:`~repro.serve.ServeRequest.device` names; requests
    without a device are judged against ``"mean"``.
    """
    summary = predict_all_devices(graph, DEVICE_PROFILES if profiles is None else profiles)
    table = dict(summary.per_device_ms)
    table["mean"] = summary.mean_ms
    return table


@dataclass(frozen=True)
class ModelCandidate:
    """One routable model: identity, quality, and predicted cost.

    ``latency_ms`` maps device-profile names to predicted latency and
    must include a ``"mean"`` entry (see :func:`latency_table`).
    ``accuracy`` is on whatever scale the caller registers consistently
    (the surrogate's percent scale, a fraction — floors are compared
    verbatim).
    """

    name: str
    accuracy: float
    latency_ms: Mapping[str, float]

    def predicted_ms(self, device: str | None) -> float:
        key = device if device is not None else "mean"
        try:
            return self.latency_ms[key]
        except KeyError:
            raise KeyError(
                f"model {self.name!r} has no latency prediction for device "
                f"{key!r}; known: {sorted(self.latency_ms)}"
            ) from None


@dataclass(frozen=True)
class ModelSelection:
    """The router's verdict for one request."""

    name: str
    predicted_ms: float  # raw device prediction for the chosen model
    effective_ms: float  # prediction inflated by current queue load
    fits_budget: bool  # False = floor met but every fit model over budget


def select_model(
    candidates: Iterable[ModelCandidate],
    *,
    budget_ms: float | None = None,
    accuracy_floor: float = 0.0,
    device: str | None = None,
    load: Mapping[str, float] | None = None,
) -> ModelSelection:
    """Route one request: cheapest model meeting the floor and budget.

    Routing rule, in order:

    1. Drop candidates with ``accuracy < accuracy_floor``; if none
       remain, raise :class:`NoFeasibleModel` (quality promises are
       hard — there is no "slightly worse" fallback).
    2. Among the rest, keep those with ``predicted_ms(device) <=
       budget_ms`` (no budget keeps all) and pick the minimum
       *effective* cost: ``predicted * (1 + load[name])``, where
       ``load`` is each model's current queue pressure (queued requests
       per replica, or any monotone congestion signal).  The load term
       makes an otherwise-always-cheapest model spill overflow traffic
       to the next feasible one.
    3. If the floor is satisfiable but no floor-satisfying model fits
       the budget, serve anyway on the lowest-``predicted_ms``
       floor-satisfying model and mark ``fits_budget=False`` (a slow
       answer beats no answer; the fleet counts these as budget
       misses).
    """
    pool = [c for c in candidates if c.accuracy >= accuracy_floor]
    if not pool:
        raise NoFeasibleModel(
            f"no model meets accuracy_floor={accuracy_floor:g}"
        )
    load = load or {}

    def effective(c: ModelCandidate) -> float:
        return c.predicted_ms(device) * (1.0 + max(0.0, load.get(c.name, 0.0)))

    fitting = [
        c for c in pool
        if budget_ms is None or c.predicted_ms(device) <= budget_ms
    ]
    if fitting:
        best = min(fitting, key=lambda c: (effective(c), c.name))
        return ModelSelection(
            name=best.name,
            predicted_ms=best.predicted_ms(device),
            effective_ms=effective(best),
            fits_budget=True,
        )
    best = min(pool, key=lambda c: (c.predicted_ms(device), c.name))
    return ModelSelection(
        name=best.name,
        predicted_ms=best.predicted_ms(device),
        effective_ms=effective(best),
        fits_budget=False,
    )
