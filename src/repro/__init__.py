"""repro — Pareto optimization of CNN models via hardware-aware NAS.

A from-scratch, NumPy-based reproduction of "Pareto Optimization of CNN
Models via Hardware-Aware Neural Architecture Search for Drainage Crossing
Classification on Resource-Limited Devices" (SC-W 2023), including every
substrate the paper depends on: a CNN training engine, a synthetic
drainage-crossing dataset, an NNI-style NAS framework, nn-Meter-style
kernel latency predictors, ONNX-style model serialization and 3-objective
Pareto analysis.

Quickstart::

    from repro import SearchableResNet18, get_predictor, model_size_mb

    model = SearchableResNet18(in_channels=7, kernel_size=3, stride=2,
                               padding=1, pool_choice=0,
                               initial_output_feature=32)
    latency = get_predictor("cortexA76cpu").predict_model(model)
    memory = model_size_mb(model)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.nn.resnet import SearchableResNet18, build_baseline_resnet18, build_model
from repro.nas.config import ModelConfig
from repro.nas.searchspace import DEFAULT_SPACE, SearchSpace
from repro.nas.surrogate import SurrogateEvaluator
from repro.nas.evaluators import TrainingEvaluator
from repro.nas.experiment import Experiment
from repro.latency.registry import get_predictor, list_predictors
from repro.latency.predictors import predict_all_devices
from repro.onnxlite.size import model_size_mb
from repro.data.dataset import DrainageCrossingDataset
from repro.pareto.analysis import ParetoAnalysis
from repro.core.pipeline import HwNasPipeline, run_paper_sweep

__version__ = "1.0.0"

__all__ = [
    "SearchableResNet18",
    "build_baseline_resnet18",
    "build_model",
    "ModelConfig",
    "SearchSpace",
    "DEFAULT_SPACE",
    "SurrogateEvaluator",
    "TrainingEvaluator",
    "Experiment",
    "get_predictor",
    "list_predictors",
    "predict_all_devices",
    "model_size_mb",
    "DrainageCrossingDataset",
    "ParetoAnalysis",
    "HwNasPipeline",
    "run_paper_sweep",
    "__version__",
]
