"""Deterministic fault injection for sweeps, pools and stores.

Generalizes :mod:`repro.nas.failures` (the paper's 11-of-1,728 preset)
into a full chaos harness: typed exceptions, latency spikes, per-trial
hangs (for deadline tests), worker kills and store-line corruption, all
driven by a seeded schedule so every chaos test is exactly repeatable.

The harness *proves* the fault-tolerance layer: `tests/test_chaos_resume.py`
injects transients, a worker kill and a truncated store tail into one
sweep and asserts the recovered, resumed results are bitwise-equal to a
fault-free serial run.
"""

from repro.faults.harness import (
    Fault,
    FaultKind,
    FaultPlan,
    FaultyEvaluator,
    InjectedPermanentError,
    InjectedTransientError,
    KillSwitch,
    NodeFault,
    NodeFaultKind,
    NodeFaultPlan,
    corrupt_shard_tail,
    corrupt_store_tail,
    interrupt_after,
)

__all__ = [
    "Fault",
    "FaultKind",
    "FaultPlan",
    "FaultyEvaluator",
    "InjectedPermanentError",
    "InjectedTransientError",
    "KillSwitch",
    "NodeFault",
    "NodeFaultKind",
    "NodeFaultPlan",
    "corrupt_shard_tail",
    "corrupt_store_tail",
    "interrupt_after",
]
