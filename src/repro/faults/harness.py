"""The deterministic fault-injection harness.

Everything here is seeded: the same ``(seed, total, counts)`` produce the
same fault schedule in every process, so chaos tests are exactly
repeatable and a resumed sweep sees the same injected world as the
original one.

Building blocks
---------------
- :class:`FaultPlan` — a per-trial schedule of typed faults.  Plugs into
  :class:`~repro.nas.experiment.Experiment` as its ``failure_injector``:
  the runner calls ``fails(trial_id)`` (permanent, the paper's
  11-of-1,728 accounting) and ``on_attempt(trial_id, attempt)`` (raises
  transient errors, sleeps latency spikes, simulates hangs that honor
  the active :func:`~repro.nas.retry.current_deadline`).
- :class:`FaultyEvaluator` — config-keyed faults on the evaluator path,
  including **worker kills**: the scheduled trial is routed through a
  process pool whose worker ``os._exit``\\ s before evaluating (a
  file-latch guarantees the kill fires exactly once, even across a
  resume), exercising pool respawn + requeue in
  :meth:`~repro.parallel.Executor.map_resilient`.
- :func:`corrupt_store_tail` — deterministic JSONL tail corruption
  (truncate / garbage / partial append), the exact artifact a writer
  killed mid-append leaves behind.
- :func:`interrupt_after` — a progress callback that kills the sweep
  after N trials (fatal, propagates), for interrupt/resume round-trips.
"""

from __future__ import annotations

import enum
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

from repro.nas.failures import FailureInjector
from repro.nas.retry import (
    NodeKilledError,
    PermanentTrialError,
    TransientTrialError,
    current_deadline,
)
from repro.utils.rng import rng_from_seed, stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nas.config import ModelConfig
    from repro.nas.evaluators import AccuracyEvaluator, EvalResult
    from repro.parallel.executor import Executor

__all__ = [
    "FaultKind",
    "Fault",
    "FaultPlan",
    "FaultyEvaluator",
    "InjectedTransientError",
    "InjectedPermanentError",
    "KillSwitch",
    "NodeFault",
    "NodeFaultKind",
    "NodeFaultPlan",
    "corrupt_shard_tail",
    "corrupt_store_tail",
    "interrupt_after",
]


class InjectedTransientError(TransientTrialError):
    """A scheduled transient fault (recoverable by retry)."""


class InjectedPermanentError(PermanentTrialError):
    """A scheduled permanent fault (fails its trial, not the sweep)."""


class FaultKind(str, enum.Enum):
    """What kind of fault a schedule entry injects."""

    TRIAL_FAILURE = "trial_failure"  # permanent: the paper's lost-trials model
    TRANSIENT = "transient"  # raises on the first `attempts` attempts, then heals
    LATENCY_SPIKE = "latency_spike"  # sleeps `delay_s` inside the attempt
    HANG = "hang"  # sleeps until the trial deadline expires (or `delay_s` cap)
    WORKER_KILL = "worker_kill"  # pool worker os._exit (FaultyEvaluator path)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``attempts`` is how many leading attempts of the trial the fault
    affects (transients heal after that many failures); ``delay_s`` is
    the spike duration or the hang's hard cap when no deadline is active.
    """

    kind: FaultKind
    trial_id: int
    attempts: int = 1
    delay_s: float = 0.0
    note: str = ""


_HANG_TICK_S = 0.005  # cooperative hang granularity


class FaultPlan:
    """A deterministic, trial-indexed fault schedule.

    Duck-type compatible with :class:`~repro.nas.failures.FailureInjector`
    (``fails``/``failed_indices``), plus the retry-aware
    :meth:`on_attempt` hook the experiment runner calls inside each
    attempt.  Injection counters (:attr:`counters`) feed telemetry and
    test assertions.
    """

    def __init__(self, faults: Iterable[Fault] = (), seed: int = 0) -> None:
        self.seed = seed
        self._by_trial: dict[int, list[Fault]] = {}
        for fault in faults:
            self._by_trial.setdefault(fault.trial_id, []).append(fault)
        #: How many times each fault kind actually fired.
        self.counters: dict[str, int] = {kind.value: 0 for kind in FaultKind}

    # -- construction --------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan that injects nothing."""
        return cls()

    @classmethod
    def paper_mode(cls, seed: int = 0) -> "FaultPlan":
        """The paper's 11-of-1,728 lost-trials preset.

        Delegates index selection to
        :meth:`FailureInjector.paper_mode`, so the injected trial set is
        bit-identical to the legacy injector's for the same seed.
        """
        legacy = FailureInjector.paper_mode(seed=seed)
        return cls(
            (Fault(FaultKind.TRIAL_FAILURE, t, note="paper lost trial")
             for t in sorted(legacy.failed_indices)),
            seed=seed,
        )

    @classmethod
    def chaos(
        cls,
        total: int,
        transients: int = 0,
        transient_attempts: int = 1,
        failures: int = 0,
        spikes: int = 0,
        spike_s: float = 0.0,
        hangs: int = 0,
        hang_cap_s: float = 0.05,
        seed: int = 0,
    ) -> "FaultPlan":
        """A seeded chaos schedule over ``total`` trials.

        Picks **disjoint** trial sets per fault kind (a trial suffers at
        most one scheduled fault, keeping test assertions crisp):
        ``transients`` trials fail their first ``transient_attempts``
        attempts then heal; ``failures`` trials fail permanently;
        ``spikes`` sleep ``spike_s``; ``hangs`` sleep until the trial
        deadline fires (capped at ``hang_cap_s`` without one).
        """
        want = transients + failures + spikes + hangs
        if want > total:
            raise ValueError(f"scheduled {want} faulty trials but the sweep has only {total}")
        rng = rng_from_seed(stable_hash("fault-plan", seed, total, transients,
                                        failures, spikes, hangs))
        picks = list(map(int, rng.choice(total, size=want, replace=False)))
        faults: list[Fault] = []
        cursor = 0
        for count, kind, kw in (
            (transients, FaultKind.TRANSIENT, {"attempts": transient_attempts}),
            (failures, FaultKind.TRIAL_FAILURE, {}),
            (spikes, FaultKind.LATENCY_SPIKE, {"delay_s": spike_s}),
            (hangs, FaultKind.HANG, {"delay_s": hang_cap_s}),
        ):
            for trial_id in picks[cursor: cursor + count]:
                faults.append(Fault(kind, trial_id, **kw))
            cursor += count
        return cls(faults, seed=seed)

    # -- schedule queries ----------------------------------------------------

    def faults_for(self, trial_id: int) -> list[Fault]:
        """Scheduled faults of one trial (possibly empty)."""
        return list(self._by_trial.get(trial_id, ()))

    def trials_with(self, kind: FaultKind) -> list[int]:
        """Sorted trial ids carrying a fault of ``kind``."""
        return sorted(t for t, fs in self._by_trial.items() if any(f.kind is kind for f in fs))

    @property
    def failed_indices(self) -> frozenset[int]:
        """Trials injected as permanent failures (legacy-injector API)."""
        return frozenset(self.trials_with(FaultKind.TRIAL_FAILURE))

    def fails(self, trial_id: int) -> bool:
        """Legacy-injector API: is this trial a scheduled permanent loss?"""
        failed = any(f.kind is FaultKind.TRIAL_FAILURE for f in self._by_trial.get(trial_id, ()))
        if failed:
            self.counters[FaultKind.TRIAL_FAILURE.value] += 1
        return failed

    # -- injection -----------------------------------------------------------

    def on_attempt(self, trial_id: int, attempt: int) -> None:
        """Fire the scheduled faults for ``(trial_id, attempt)``.

        Called by the experiment runner *inside* the retried attempt, so
        raised :class:`InjectedTransientError`\\ s flow through the
        taxonomy and hangs are bounded by the active trial deadline.
        """
        for fault in self._by_trial.get(trial_id, ()):
            if fault.kind is FaultKind.TRANSIENT and attempt <= fault.attempts:
                self.counters[FaultKind.TRANSIENT.value] += 1
                raise InjectedTransientError(
                    f"injected transient fault (trial {trial_id}, attempt {attempt}"
                    f"/{fault.attempts} faulty)"
                )
            if fault.kind is FaultKind.LATENCY_SPIKE and attempt <= fault.attempts:
                self.counters[FaultKind.LATENCY_SPIKE.value] += 1
                self._sleep_cooperatively(fault.delay_s)
            if fault.kind is FaultKind.HANG and attempt <= fault.attempts:
                self.counters[FaultKind.HANG.value] += 1
                self._hang(fault.delay_s)

    @staticmethod
    def _sleep_cooperatively(duration_s: float) -> None:
        """Sleep ``duration_s``, honoring the active trial deadline."""
        deadline = current_deadline()
        end = time.monotonic() + duration_s
        while True:
            if deadline is not None:
                deadline.check("injected latency spike")
            remaining = end - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(remaining, _HANG_TICK_S))

    @staticmethod
    def _hang(cap_s: float) -> None:
        """Simulate a hang: sleep until the deadline fires (or ``cap_s``).

        With an active deadline shorter than the cap this raises
        :class:`~repro.nas.retry.TrialDeadlineExceeded` — the scenario
        deadline tests assert.  The cap keeps the hang finite even when
        no deadline is installed.
        """
        deadline = current_deadline()
        end = time.monotonic() + cap_s
        while time.monotonic() < end:
            if deadline is not None:
                deadline.check("injected hang")
            time.sleep(_HANG_TICK_S)
        if deadline is not None:
            deadline.check("injected hang")

    def describe(self) -> str:
        """One-line schedule summary for manifests and logs."""
        parts = [f"{kind.value}={len(self.trials_with(kind))}" for kind in FaultKind
                 if self.trials_with(kind)]
        return "FaultPlan(" + (", ".join(parts) or "none") + f", seed={self.seed})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


# ---------------------------------------------------------------------------
# Worker kills
# ---------------------------------------------------------------------------


class KillSwitch:
    """A cross-process, crash-safe once-only latch (``O_CREAT | O_EXCL``).

    The first process to :meth:`acquire` the latch wins; every later
    attempt (including after respawn or resume) loses.  This makes a
    scheduled worker kill fire exactly once, so pool respawn + requeue
    can be asserted deterministically.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def acquire(self) -> bool:
        """Atomically claim the latch; ``True`` exactly once per path."""
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def fire_once(self, exit_code: int = 42) -> None:
        """Kill this process abruptly — but only on the first acquire.

        ``os._exit`` skips interpreter cleanup, which is exactly how a
        segfaulted / OOM-killed pool worker looks to the parent
        (``BrokenProcessPool``).
        """
        if self.acquire():
            os._exit(exit_code)


def _pool_eval(task: "tuple[AccuracyEvaluator, ModelConfig, str | None]") -> "EvalResult":
    """Pool-side evaluation task: optionally die first, then evaluate."""
    evaluator, config, latch_path = task
    if latch_path is not None:
        KillSwitch(latch_path).fire_once()
    return evaluator.evaluate(config)


class FaultyEvaluator:
    """Wraps an accuracy evaluator with config-keyed injected faults.

    Parameters
    ----------
    inner:
        The real evaluator (must be picklable when ``executor`` is a
        process pool).
    kill_config_ids:
        ``config_id()`` values whose evaluation must suffer one worker
        kill.  With a process-pool ``executor`` the trial is routed
        through :meth:`~repro.parallel.Executor.map_resilient`; the
        worker latches the kill (:class:`KillSwitch`), dies with
        ``os._exit``, and the respawned pool's requeued attempt returns
        the *real* result — the trial still succeeds.  Without an
        executor the kill degrades to an in-process
        :class:`InjectedTransientError` (dying for real would take the
        test runner with it).
    latch_dir:
        Directory for the kill latches (required with kills).
    executor:
        Optional :class:`~repro.parallel.Executor` for the kill path.
    """

    def __init__(
        self,
        inner: "AccuracyEvaluator",
        kill_config_ids: Iterable[str] = (),
        latch_dir: str | Path | None = None,
        executor: "Executor | None" = None,
    ) -> None:
        self.inner = inner
        self.kill_config_ids = frozenset(kill_config_ids)
        if self.kill_config_ids and latch_dir is None:
            raise ValueError("kill_config_ids requires latch_dir for the once-only latches")
        self.latch_dir = Path(latch_dir) if latch_dir is not None else None
        self.executor = executor
        #: Kills that actually fired through the pool path.
        self.kills_fired = 0

    def evaluate(self, config: "ModelConfig") -> "EvalResult":
        cid = config.config_id()
        if cid not in self.kill_config_ids:
            return self.inner.evaluate(config)
        assert self.latch_dir is not None
        latch = self.latch_dir / f"kill-{cid}.latch"
        if self.executor is None:
            # No pool to kill: degrade to a retryable in-process fault.
            if KillSwitch(latch).acquire():
                raise InjectedTransientError(f"injected worker kill (in-process) for {cid}")
            return self.inner.evaluate(config)
        fired_before = latch.exists()
        [result] = self.executor.map_resilient(_pool_eval, [(self.inner, config, str(latch))])
        if latch.exists() and not fired_before:
            self.kills_fired += 1
        if not result.ok:
            raise InjectedPermanentError(
                f"worker-kill trial did not recover: {result.error_type}: {result.error}"
            )
        return result.value


# ---------------------------------------------------------------------------
# Node-level faults (the distributed sweep fabric)
# ---------------------------------------------------------------------------


class NodeFaultKind(str, enum.Enum):
    """What kind of node-level fault a schedule entry injects."""

    NODE_KILL = "node_kill"  # the node dies mid-lease (stops heartbeating)
    HEARTBEAT_LOSS = "heartbeat_loss"  # node keeps working, heartbeats vanish
    SHARD_CORRUPT = "shard_corrupt"  # marker: corrupt a shard tail between legs


@dataclass(frozen=True)
class NodeFault:
    """One scheduled node-level fault.

    ``after_trials`` arms the fault once the node has completed that many
    trials.  For :attr:`~NodeFaultKind.HEARTBEAT_LOSS`,
    ``duration_trials`` is how many subsequent trials run silent and
    ``stall_s`` delays each silent trial's result submission — long
    enough relative to the lease TTL, the coordinator reclaims the lease
    while the work is genuinely still in flight (the duplicate-commit
    scenario the fabric must deduplicate).
    """

    kind: NodeFaultKind
    node_id: str = ""
    after_trials: int = 0
    duration_trials: int = 1
    stall_s: float = 0.0
    note: str = ""


class NodeFaultPlan:
    """A deterministic schedule of node deaths and heartbeat losses.

    Plugs into :class:`~repro.nas.fabric.WorkerNode` (``fault_plan=``).
    Node kills raise :class:`~repro.nas.retry.NodeKilledError` from
    :meth:`before_trial` — fatal to the node thread, which unwinds
    without releasing its lease, exactly like a machine that dropped off
    the network; the coordinator's reclaim loop re-leases the work.

    Each fault fires **once**, latched either in memory or — with a
    ``latch_dir`` — through crash-safe :class:`KillSwitch` files that
    survive a resume, so the second leg of a chaos round-trip is not
    re-killed.

    :attr:`~NodeFaultKind.SHARD_CORRUPT` entries are inert here (there
    is no safe moment to corrupt a live shard from inside the sweep);
    apply them between legs with :func:`corrupt_shard_tail`.
    """

    def __init__(
        self,
        faults: Iterable[NodeFault] = (),
        latch_dir: str | Path | None = None,
    ) -> None:
        self.faults = list(faults)
        self.latch_dir = Path(latch_dir) if latch_dir is not None else None
        self._fired: set[str] = set()
        #: node_id -> {fault index: suppress heartbeats through this trial count}
        self._loss_until: dict[str, dict[int, int]] = {}
        #: How many times each fault kind actually fired.
        self.counters: dict[str, int] = {kind.value: 0 for kind in NodeFaultKind}

    def _latch(self, key: str) -> bool:
        """Once-only trigger; crash-safe when ``latch_dir`` is set."""
        if self.latch_dir is not None:
            return KillSwitch(self.latch_dir / f"{key}.latch").acquire()
        if key in self._fired:
            return False
        self._fired.add(key)
        return True

    def faults_for(self, node_id: str) -> list[NodeFault]:
        """Scheduled faults of one node (possibly empty)."""
        return [f for f in self.faults if f.node_id == node_id]

    def before_trial(self, node_id: str, trials_run: int) -> None:
        """Fire armed faults for a node about to start its next trial.

        Raises :class:`~repro.nas.retry.NodeKilledError` for an armed
        :attr:`~NodeFaultKind.NODE_KILL`; arms heartbeat-loss windows.
        """
        for idx, fault in enumerate(self.faults):
            if fault.node_id != node_id or trials_run < fault.after_trials:
                continue
            if fault.kind is NodeFaultKind.NODE_KILL:
                if self._latch(f"node-kill-{node_id}-{idx}"):
                    self.counters[NodeFaultKind.NODE_KILL.value] += 1
                    raise NodeKilledError(
                        f"injected node kill on {node_id!r} after {trials_run} trial(s)"
                    )
            elif fault.kind is NodeFaultKind.HEARTBEAT_LOSS:
                if self._latch(f"heartbeat-loss-{node_id}-{idx}"):
                    self.counters[NodeFaultKind.HEARTBEAT_LOSS.value] += 1
                    self._loss_until.setdefault(node_id, {})[idx] = (
                        trials_run + fault.duration_trials
                    )

    def heartbeat_suppressed(self, node_id: str, trials_run: int) -> bool:
        """Whether this node's heartbeats are currently swallowed."""
        return any(
            trials_run <= until
            for until in self._loss_until.get(node_id, {}).values()
        )

    def stall_s(self, node_id: str, trials_run: int) -> float:
        """Submission delay for a node inside a heartbeat-loss window."""
        return max(
            (
                self.faults[idx].stall_s
                for idx, until in self._loss_until.get(node_id, {}).items()
                if trials_run <= until
            ),
            default=0.0,
        )

    def describe(self) -> str:
        """One-line schedule summary for logs."""
        by_kind: dict[str, int] = {}
        for fault in self.faults:
            by_kind[fault.kind.value] = by_kind.get(fault.kind.value, 0) + 1
        parts = [f"{k}={n}" for k, n in sorted(by_kind.items())]
        return "NodeFaultPlan(" + (", ".join(parts) or "none") + ")"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


# ---------------------------------------------------------------------------
# Store corruption
# ---------------------------------------------------------------------------


def corrupt_store_tail(
    path: str | Path,
    mode: str = "truncate",
    seed: int = 0,
) -> dict[str, object]:
    """Deterministically corrupt the tail of a JSONL store.

    Modes (all reproduce real crash artifacts):

    - ``"truncate"`` — cut the last line at a seeded midpoint and drop
      the trailing newline: a writer killed mid-``write``.
    - ``"garbage"`` — overwrite the tail of the last line with seeded
      binary junk: a torn sector / partial page flush.
    - ``"partial-append"`` — append the seeded prefix of a plausible new
      record with no newline: a crash between ``write`` and ``flush``.

    Returns a description dict (``mode``, ``line``, ``removed_bytes``)
    for test assertions.
    """
    path = Path(path)
    raw = path.read_bytes()
    if not raw.strip():
        raise ValueError(f"{path} is empty; nothing to corrupt")
    rng = rng_from_seed(stable_hash("corrupt-store", seed, mode, len(raw)))
    lines = raw.rstrip(b"\n").split(b"\n")
    last = lines[-1]
    if mode == "truncate":
        cut = int(rng.integers(1, max(len(last) - 1, 2)))
        lines[-1] = last[:cut]
        body = b"\n".join(lines)  # no trailing newline: mid-append kill
        removed = len(raw) - len(body)
    elif mode == "garbage":
        junk_len = int(rng.integers(4, 24))
        junk = bytes(int(b) for b in rng.integers(0, 256, size=junk_len))
        keep = max(len(last) // 2, 1)
        lines[-1] = last[:keep] + junk
        body = b"\n".join(lines) + b"\n"
        removed = len(last) - keep
    elif mode == "partial-append":
        partial = b'{"trial_id": 999999, "config": {"chan'
        cut = int(rng.integers(8, len(partial)))
        body = raw + partial[:cut]
        removed = 0
    else:
        raise ValueError(f"unknown corruption mode {mode!r}; "
                         "use 'truncate', 'garbage' or 'partial-append'")
    path.write_bytes(body)
    return {"mode": mode, "line": len(lines), "removed_bytes": int(removed)}


def corrupt_shard_tail(
    root: str | Path,
    mode: str = "truncate",
    seed: int = 0,
    shard: int | str | None = None,
) -> dict[str, object]:
    """Corrupt one shard tail of a sharded trial store directory.

    ``shard`` selects the victim: a file name, an index into the sorted
    non-empty shard list, or ``None`` for a seeded deterministic pick.
    Delegates the actual damage to :func:`corrupt_store_tail`; the
    returned dict additionally carries the victim's ``shard`` file name,
    so a chaos test can later assert that exactly this shard was
    quarantined by :meth:`~repro.nas.fabric.ShardedTrialStore.load`.
    """
    root = Path(root)
    shards = sorted(
        p for p in root.glob("shard-*-of-*.jsonl") if p.stat().st_size > 0
    )
    if not shards:
        raise ValueError(f"no non-empty shard files under {root}")
    if shard is None:
        rng = rng_from_seed(stable_hash("corrupt-shard", seed, len(shards)))
        path = shards[int(rng.integers(0, len(shards)))]
    elif isinstance(shard, str):
        path = root / shard
    else:
        path = shards[shard]
    info = corrupt_store_tail(path, mode=mode, seed=seed)
    info["shard"] = path.name
    return info


def interrupt_after(
    n_trials: int,
    exc_type: type[BaseException] = KeyboardInterrupt,
) -> Callable[[int, int, object], None]:
    """A progress callback that kills the sweep after ``n_trials``.

    The raised exception is fatal by taxonomy, so it propagates out of
    :meth:`Experiment.run` exactly like a user's Ctrl-C — the store
    keeps every completed trial, and the in-flight one is lost (or, with
    :func:`corrupt_store_tail`, half-written).
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")

    def _progress(done: int, total: int, record: object) -> None:
        if done >= n_trials:
            raise exc_type(f"injected interrupt after {done} trials")

    return _progress
