"""Logging setup shared by library code, the CLI, and examples."""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure"]

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_configured = False


def configure(level: int = logging.INFO, stream=None) -> None:
    """Install a root handler once.  Safe to call repeatedly."""
    global _configured
    root = logging.getLogger("repro")
    if not _configured:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    root.setLevel(level)


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
