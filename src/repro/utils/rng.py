"""Deterministic random-number management.

Every stochastic component in the library (data synthesis, weight init,
trial noise, failure injection) draws from a :class:`numpy.random.Generator`
derived from an explicit seed, so whole experiments are reproducible and
individual trials can be re-derived in isolation — a requirement for the
parallel trial executor, where workers must not share RNG state.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

__all__ = ["stable_hash", "rng_from_seed", "spawn_rngs", "SeedSequenceFactory"]


def stable_hash(*parts: object, bits: int = 64) -> int:
    """Hash arbitrary printable objects to a stable non-negative integer.

    Python's builtin ``hash`` is salted per process, which breaks
    reproducibility across runs and across pool workers; this uses BLAKE2b
    over the ``repr`` of the parts instead.

    Parameters
    ----------
    parts:
        Objects mixed into the hash.  Their ``repr`` must be deterministic
        (builtin scalars, strings, tuples of those, ...).
    bits:
        Size of the returned integer in bits (must be a multiple of 8).

    Returns
    -------
    int
        A non-negative integer below ``2**bits``.
    """
    if bits % 8 != 0 or bits <= 0:
        raise ValueError(f"bits must be a positive multiple of 8, got {bits}")
    h = hashlib.blake2b(digest_size=bits // 8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")  # field separator so ("ab","c") != ("a","bc")
    return int.from_bytes(h.digest(), "little")


def rng_from_seed(seed: int | Sequence[int] | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed.

    Accepts an existing generator (returned unchanged), an integer seed, a
    sequence of integers (entropy pool), or ``None`` (OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one seed.

    Uses :class:`numpy.random.SeedSequence` spawning, the recommended
    mechanism for handing independent streams to parallel workers.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(n)]


class SeedSequenceFactory:
    """Derive named, reproducible RNG streams from a single experiment seed.

    A stream is addressed by a key tuple (e.g. ``("trial", 17, "fold", 3)``).
    The same key always yields an identically-seeded generator regardless of
    call order or process, which lets distributed trial workers reconstruct
    exactly the stream the serial runner would have used.
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root experiment seed."""
        return self._seed

    def seed_for(self, *key: object) -> int:
        """Return the derived integer seed for ``key``."""
        return stable_hash(self._seed, *key, bits=64)

    def rng(self, *key: object) -> np.random.Generator:
        """Return a fresh generator for ``key`` (same key -> same stream)."""
        return np.random.default_rng(self.seed_for(*key))

    def rngs(self, count: int, *key: object) -> list[np.random.Generator]:
        """Return ``count`` generators for indexed sub-keys of ``key``."""
        return [self.rng(*key, i) for i in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedSequenceFactory(seed={self._seed})"


def permutation_for(keys: Iterable[object], seed: int) -> np.ndarray:
    """Return a deterministic permutation of ``range(len(keys))``.

    The permutation depends on the *content* of ``keys`` and the seed, so a
    reordering of the input produces a correspondingly reordered output.
    """
    keys = list(keys)
    rng = np.random.default_rng(stable_hash(seed, tuple(map(repr, keys))))
    return rng.permutation(len(keys))
