"""Shared utilities: RNG management, timing, IO, logging, tables.

These helpers are deliberately dependency-light; every other subpackage in
:mod:`repro` builds on them.
"""

from repro.utils.rng import SeedSequenceFactory, rng_from_seed, spawn_rngs, stable_hash
from repro.utils.timing import Stopwatch, Timer, format_duration
from repro.utils.io import (
    atomic_write_text,
    read_json,
    read_jsonl,
    write_csv,
    write_json,
    write_jsonl,
)
from repro.utils.tables import render_table
from repro.utils.logging import get_logger

__all__ = [
    "SeedSequenceFactory",
    "rng_from_seed",
    "spawn_rngs",
    "stable_hash",
    "Stopwatch",
    "Timer",
    "format_duration",
    "atomic_write_text",
    "read_json",
    "read_jsonl",
    "write_csv",
    "write_json",
    "write_jsonl",
    "render_table",
    "get_logger",
]
