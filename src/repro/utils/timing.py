"""Wall-clock timing helpers used by the profiler and the benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "Stopwatch", "format_duration"]


def format_duration(seconds: float) -> str:
    """Render a duration in the most natural unit (us / ms / s / min / h)."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    if seconds < 3600.0:
        minutes, rem = divmod(seconds, 60.0)
        return f"{int(minutes)}m{rem:04.1f}s"
    hours, rem = divmod(seconds, 3600.0)
    return f"{int(hours)}h{int(rem // 60)}m"


class Timer:
    """Context manager measuring elapsed wall time via ``perf_counter``.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer(elapsed={format_duration(self.elapsed)})"


@dataclass
class Stopwatch:
    """Accumulating timer with named laps.

    Used by :mod:`repro.profiling` to attribute time to model layers and by
    the experiment runner to report per-phase durations.
    """

    laps: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)
    _open: dict[str, float] = field(default_factory=dict)

    def start(self, name: str) -> None:
        """Begin (or resume) timing the lap ``name``."""
        if name in self._open:
            raise RuntimeError(f"lap {name!r} is already running")
        self._open[name] = time.perf_counter()

    def stop(self, name: str) -> float:
        """Stop lap ``name`` and return the time added by this interval."""
        try:
            begun = self._open.pop(name)
        except KeyError:
            raise RuntimeError(f"lap {name!r} was never started") from None
        delta = time.perf_counter() - begun
        self.laps[name] = self.laps.get(name, 0.0) + delta
        self.counts[name] = self.counts.get(name, 0) + 1
        return delta

    def lap(self, name: str):
        """Context manager form: ``with sw.lap("conv1"): ...``."""
        return _Lap(self, name)

    def total(self) -> float:
        """Sum of all recorded lap times."""
        return sum(self.laps.values())

    def summary(self) -> list[tuple[str, float, int]]:
        """Laps as ``(name, seconds, count)`` rows, slowest first."""
        return sorted(
            ((name, secs, self.counts[name]) for name, secs in self.laps.items()),
            key=lambda row: -row[1],
        )


class _Lap:
    def __init__(self, sw: Stopwatch, name: str) -> None:
        self._sw = sw
        self._name = name

    def __enter__(self) -> None:
        self._sw.start(self._name)

    def __exit__(self, *exc: object) -> None:
        self._sw.stop(self._name)
