"""Small, dependency-free structured IO: atomic writes, JSON/JSONL/CSV.

The trial database (:mod:`repro.nas.storage`) appends JSONL records from a
long-running sweep; atomic replacement protects snapshot files against
partial writes if the process is interrupted.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = [
    "atomic_write_text",
    "fsync_dir",
    "write_json",
    "read_json",
    "write_jsonl",
    "read_jsonl",
    "iter_jsonl",
    "scan_jsonl",
    "append_jsonl_line",
    "write_csv",
]


class _NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands NumPy scalars and arrays."""

    def default(self, o: Any) -> Any:
        if isinstance(o, np.integer):
            return int(o)
        if isinstance(o, np.floating):
            return float(o)
        if isinstance(o, np.bool_):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        return super().default(o)


def atomic_write_text(path: str | Path, text: str, fsync: bool = False) -> None:
    """Write ``text`` to ``path`` atomically (tempfile + rename).

    With ``fsync=True`` the temporary file is fsynced *before* the
    rename and the parent directory entry is fsynced *after* it, so the
    replacement survives a power failure at any point: either the old
    bytes or the complete new bytes are on disk, never a torn file and
    never a directory entry pointing at unflushed data.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if fsync:
            fsync_dir(path.parent)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def fsync_dir(path: str | Path) -> None:
    """fsync a directory entry (durable renames; no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # platforms without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


def write_json(path: str | Path, obj: Any, indent: int = 2) -> None:
    """Serialize ``obj`` as JSON to ``path`` atomically."""
    atomic_write_text(path, json.dumps(obj, indent=indent, cls=_NumpyJSONEncoder))


def read_json(path: str | Path) -> Any:
    """Load a JSON document."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_jsonl(path: str | Path, records: Iterable[Mapping[str, Any]], append: bool = False) -> int:
    """Write records as JSON Lines; returns the number of records written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with open(path, "a" if append else "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, cls=_NumpyJSONEncoder))
            handle.write("\n")
            count += 1
    return count


def iter_jsonl(path: str | Path) -> Iterator[dict[str, Any]]:
    """Lazily yield records from a JSON Lines file, skipping blank lines."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load all records from a JSON Lines file."""
    return list(iter_jsonl(path))


def scan_jsonl(path: str | Path) -> Iterator[tuple[int, str, dict[str, Any] | None]]:
    """Tolerantly scan a JSON Lines file, surfacing corrupt lines.

    Yields ``(lineno, raw_line, parsed)`` for every non-blank line
    (1-based line numbers, raw line without the trailing newline);
    ``parsed`` is ``None`` when the line is not valid JSON or not a JSON
    object — the caller decides whether to quarantine or raise.  A store
    whose writer was killed mid-append typically has exactly one such
    line: the truncated tail.
    """
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for lineno, line in enumerate(handle, start=1):
            raw = line.rstrip("\n")
            if not raw.strip():
                continue
            try:
                parsed = json.loads(raw)
            except (json.JSONDecodeError, ValueError):
                parsed = None
            if not isinstance(parsed, dict):
                parsed = None
            yield lineno, raw, parsed


def append_jsonl_line(
    handle: Any,
    record: Mapping[str, Any],
    durability: str = "flush",
) -> None:
    """Append one record to an open JSONL handle with a durability knob.

    - ``"buffered"`` — leave the record in the process's stdio buffer
      (fastest; a crash can lose buffered records);
    - ``"flush"`` — flush to the OS after the record (default: survives a
      *process* crash, not an OS/power failure);
    - ``"fsync"`` — flush + ``os.fsync`` (survives power loss; the paper
      -scale sweep appends a few records per second, so the extra
      syscall is cheap relative to a trial).

    The record is written as a single ``write`` of ``json + "\\n"`` so a
    crash between records never interleaves partial lines from this
    process.
    """
    if durability not in ("buffered", "flush", "fsync"):
        raise ValueError(
            f"durability must be 'buffered', 'flush' or 'fsync', got {durability!r}"
        )
    handle.write(json.dumps(record, cls=_NumpyJSONEncoder) + "\n")
    if durability in ("flush", "fsync"):
        handle.flush()
    if durability == "fsync":
        os.fsync(handle.fileno())


def write_csv(
    path: str | Path,
    rows: Sequence[Mapping[str, Any]],
    fieldnames: Sequence[str] | None = None,
) -> int:
    """Write mapping rows as CSV; returns the number of data rows."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if fieldnames is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key, None)
        fieldnames = list(seen)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(fieldnames))
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in fieldnames})
    return len(rows)
