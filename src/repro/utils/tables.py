"""Plain-text table rendering for benchmark/report output.

The benchmark harness prints every reproduced paper table through
:func:`render_table` so the rows can be compared against the paper
side by side.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: Any, float_fmt: str = "{:.2f}") -> str:
    """Render a single table cell (floats get a fixed precision)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]] | Sequence[Sequence[Any]],
    headers: Sequence[str] | None = None,
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render rows as an aligned ASCII table.

    ``rows`` may be dict rows (headers inferred) or positional rows
    (headers required).  Returns a string ending with a newline.
    """
    if rows and isinstance(rows[0], Mapping):
        if headers is None:
            seen: dict[str, None] = {}
            for row in rows:
                for key in row:  # type: ignore[union-attr]
                    seen.setdefault(key, None)
            headers = list(seen)
        body = [[format_cell(row.get(h, ""), float_fmt) for h in headers] for row in rows]  # type: ignore[union-attr]
    else:
        if headers is None:
            raise ValueError("headers are required for positional rows")
        body = [[format_cell(v, float_fmt) for v in row] for row in rows]

    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    rule = "-+-".join("-" * w for w in widths)
    out: list[str] = []
    if title:
        out.append(title)
        out.append("=" * max(len(title), len(rule)))
    out.append(line(headers))
    out.append(rule)
    out.extend(line(row) for row in body)
    return "\n".join(out) + "\n"
