"""Search strategies: how configurations are proposed.

The paper runs an exhaustive grid (every NNI trial); :class:`GridSearch`
reproduces that.  :class:`RandomSearch` and :class:`RegularizedEvolution`
are the standard NNI alternatives, provided for budget-limited searches
and for the strategy-comparison ablation bench.
"""

from __future__ import annotations

import collections
from typing import Callable, Iterator

from repro.nas.config import ModelConfig
from repro.nas.searchspace import SearchSpace
from repro.utils.rng import rng_from_seed

__all__ = ["SearchStrategy", "GridSearch", "RandomSearch", "RegularizedEvolution"]

#: Feedback type: the strategy learns each proposed config's score.
Objective = float


class SearchStrategy:
    """Interface: propose configurations, optionally consuming feedback."""

    def propose(self, budget: int) -> Iterator[ModelConfig]:
        """Yield up to ``budget`` configurations to evaluate."""
        raise NotImplementedError

    def observe(self, config: ModelConfig, score: Objective) -> None:
        """Feed back the score of a completed trial (default: ignore)."""

    def observe_record(self, config: ModelConfig, record) -> None:
        """Feed back the full trial record.

        The default forwards the scalar accuracy to :meth:`observe`;
        multi-objective strategies override this to see latency/memory too.
        """
        self.observe(config, record.accuracy)


class GridSearch(SearchStrategy):
    """Exhaustive grid enumeration — the paper's strategy."""

    def __init__(self, space: SearchSpace) -> None:
        self.space = space

    def propose(self, budget: int) -> Iterator[ModelConfig]:
        for i, config in enumerate(self.space.iter_all()):
            if i >= budget:
                return
            yield config


class RandomSearch(SearchStrategy):
    """Uniform random sampling without replacement (up to the grid size)."""

    def __init__(self, space: SearchSpace, seed: int = 0) -> None:
        self.space = space
        self.seed = seed

    def propose(self, budget: int) -> Iterator[ModelConfig]:
        rng = rng_from_seed(self.seed)
        seen: set[str] = set()
        total = self.space.total_configurations()
        produced = 0
        attempts = 0
        while produced < min(budget, total) and attempts < 50 * budget + 100:
            attempts += 1
            (config,) = self.space.sample(rng, 1)
            key = config.config_id()
            if key in seen:
                continue
            seen.add(key)
            produced += 1
            yield config


class RegularizedEvolution(SearchStrategy):
    """Aging evolution (Real et al. 2019): tournament + mutate + age out.

    Maintains a fixed-size population; each step samples a tournament,
    mutates the winner's best configuration, and retires the oldest
    member.  ``observe`` must be called with each proposed config's score
    before the next proposal is drawn.
    """

    def __init__(
        self,
        space: SearchSpace,
        population_size: int = 24,
        tournament_size: int = 8,
        seed: int = 0,
    ) -> None:
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 1 <= tournament_size <= population_size:
            raise ValueError("tournament_size must be in [1, population_size]")
        self.space = space
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.seed = seed
        self._population: collections.deque[tuple[ModelConfig, Objective]] = collections.deque()
        self._pending: dict[str, ModelConfig] = {}

    def observe(self, config: ModelConfig, score: Objective) -> None:
        key = config.config_id()
        self._pending.pop(key, None)
        self._population.append((config, score))
        while len(self._population) > self.population_size:
            self._population.popleft()  # age out the oldest

    def propose(self, budget: int) -> Iterator[ModelConfig]:
        rng = rng_from_seed(self.seed)
        for step in range(budget):
            if len(self._population) < self.population_size:
                (config,) = self.space.sample(rng, 1)
            else:
                members = list(self._population)
                picks = rng.choice(len(members), size=self.tournament_size, replace=False)
                parent = max((members[i] for i in picks), key=lambda cs: cs[1])[0]
                config = self.space.neighbors(parent, rng)
            self._pending[config.config_id()] = config
            yield config

    def best(self) -> tuple[ModelConfig, Objective]:
        """Best (config, score) currently in the population."""
        if not self._population:
            raise ValueError("population is empty")
        return max(self._population, key=lambda cs: cs[1])
