"""Multi-objective evolutionary search (NSGA-II-flavored).

The paper finds its Pareto front *post hoc*, by exhaustively evaluating
1,728 configurations and filtering.  Its Discussion asks for
resource-efficient NAS; the natural answer for a multi-objective problem
is to search *for the front directly*.  :class:`NSGAEvolution` keeps a
population ranked by non-dominated sorting with crowding-distance
tie-breaking (Deb et al. 2002), selects parents by binary tournament on
(rank, crowding), and mutates one knob per child — typically recovering
the grid's front with a fraction of the trial budget (see
``benchmarks/bench_ablation_moo.py``).
"""

from __future__ import annotations

import numpy as np

from repro.nas.config import ModelConfig
from repro.nas.searchspace import SearchSpace
from repro.nas.strategies import SearchStrategy
from repro.pareto.metrics import crowding_distance
from repro.pareto.ranking import fast_non_dominated_sort
from repro.utils.rng import rng_from_seed

__all__ = ["NSGAEvolution"]

#: Objective extraction: (key, sign) — signs convert to minimization.
_OBJECTIVES = (("accuracy", -1.0), ("latency_ms", 1.0), ("memory_mb", 1.0))


class NSGAEvolution(SearchStrategy):
    """Pareto-aware aging evolution over the architectural search space.

    Parameters
    ----------
    space:
        The discrete search space.
    population_size:
        Survivor count after each environmental selection.
    seed:
        RNG seed for sampling, tournaments and mutations.
    """

    def __init__(self, space: SearchSpace, population_size: int = 32, seed: int = 0) -> None:
        if population_size < 4:
            raise ValueError(f"population_size must be >= 4, got {population_size}")
        self.space = space
        self.population_size = population_size
        self._rng = rng_from_seed(seed)
        self._configs: list[ModelConfig] = []
        self._objectives: list[np.ndarray] = []

    # -- feedback -------------------------------------------------------------

    def observe_record(self, config: ModelConfig, record) -> None:
        vector = np.array([sign * float(getattr(record, key)) for key, sign in _OBJECTIVES])
        self._configs.append(config)
        self._objectives.append(vector)
        if len(self._configs) > 2 * self.population_size:
            self._environmental_selection()

    def observe(self, config: ModelConfig, score: float) -> None:
        # Scalar feedback (no latency/memory) is treated as accuracy-only.
        vector = np.array([-float(score), 0.0, 0.0])
        self._configs.append(config)
        self._objectives.append(vector)
        if len(self._configs) > 2 * self.population_size:
            self._environmental_selection()

    def _environmental_selection(self) -> None:
        """Truncate to ``population_size`` by (rank, crowding distance)."""
        values = np.vstack(self._objectives)
        ranks = fast_non_dominated_sort(values)
        keep: list[int] = []
        for rank in range(int(ranks.max()) + 1):
            members = np.flatnonzero(ranks == rank)
            if len(keep) + members.size <= self.population_size:
                keep.extend(members.tolist())
            else:
                crowd = crowding_distance(values[members])
                order = members[np.argsort(-crowd)]
                keep.extend(order[: self.population_size - len(keep)].tolist())
                break
        keep_set = sorted(keep)
        self._configs = [self._configs[i] for i in keep_set]
        self._objectives = [self._objectives[i] for i in keep_set]

    # -- proposal ---------------------------------------------------------------

    def _tournament(self) -> ModelConfig:
        values = np.vstack(self._objectives)
        ranks = fast_non_dominated_sort(values)
        crowd = np.zeros(len(ranks))
        for rank in np.unique(ranks):
            members = np.flatnonzero(ranks == rank)
            crowd[members] = crowding_distance(values[members])
        a, b = self._rng.integers(0, len(self._configs), size=2)
        if ranks[a] != ranks[b]:
            winner = a if ranks[a] < ranks[b] else b
        else:
            winner = a if crowd[a] >= crowd[b] else b
        return self._configs[winner]

    def propose(self, budget: int):
        for _ in range(budget):
            if len(self._configs) < self.population_size:
                (config,) = self.space.sample(self._rng, 1)
            else:
                config = self.space.neighbors(self._tournament(), self._rng)
            yield config

    # -- inspection --------------------------------------------------------------

    def population_front(self) -> list[ModelConfig]:
        """The current population's rank-0 configurations."""
        if not self._configs:
            return []
        ranks = fast_non_dominated_sort(np.vstack(self._objectives))
        return [self._configs[i] for i in np.flatnonzero(ranks == 0)]
