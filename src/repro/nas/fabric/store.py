"""Hash-sharded trial store: N crash-safe JSONL shards behind one API.

One JSONL file is the availability bottleneck of a large sweep: every
worker's records funnel through a single append handle, one corrupt
tail quarantines (and rewrites) the *whole* history, and resume must
re-scan everything.  :class:`ShardedTrialStore` splits the store into N
shard files, each a full crash-safe :class:`~repro.nas.storage.TrialStore`
(durability knob, tail quarantine, run manifest), with three fabric
guarantees layered on top:

- **Pure routing** — a record's shard is a pure function of its
  configuration fingerprint (:func:`shard_index`), independent of trial
  order, worker identity, time, or anything else.  Two writers can
  never disagree about where a record belongs.
- **Shard-count independence** — the merged view reads *every* shard
  file in the directory (any layout generation) and yields records in
  deterministic ``(fingerprint, trial_id)`` order, so a store written
  under N shards and re-read under M shards produces the identical
  record sequence.  Resharding is just "append under the new count".
- **Background compaction** — loading quarantines corrupt shard tails
  in memory immediately but can defer the per-shard atomic rewrites to
  a compactor thread (:meth:`ShardedTrialStore.load` with
  ``compact="background"``), so a wide store is readable without first
  rewriting every damaged shard serially.  Appends to a not-yet
  compacted shard force its compaction first — a partial tail line can
  never be concatenated onto.
"""

from __future__ import annotations

import re
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import repro.obs as obs
from repro.nas.storage import RunManifest, TrialStore
from repro.nas.trial import TrialRecord
from repro.utils.logging import get_logger
from repro.utils.rng import stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nas.config import ModelConfig

__all__ = [
    "ShardedTrialStore",
    "record_fingerprint",
    "shard_index",
    "shard_filename",
]

_LOG = get_logger("nas.fabric.store")

_SHARD_RE = re.compile(r"^shard-(\d{5})-of-(\d{5})\.jsonl$")

# Per-shard record gauges are created lazily (labelled by shard file).
_COMPACTIONS = obs.counter("repro_nas_shard_compactions_total")


def record_fingerprint(config: "ModelConfig") -> int:
    """Stable 64-bit fingerprint of one configuration.

    This is the fabric's record identity: shard routing, the merged
    iteration order and commit-time deduplication all key off it.
    """
    return stable_hash("trial-fingerprint", config.config_id())


def shard_index(config: "ModelConfig", n_shards: int) -> int:
    """Home shard of a configuration under an ``n_shards`` layout.

    A pure function of the configuration fingerprint — no state, no
    clock, no caller identity — so every process routes identically.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    return record_fingerprint(config) % n_shards


def shard_filename(idx: int, n_shards: int) -> str:
    """Canonical shard file name (``shard-00002-of-00008.jsonl``)."""
    if not 0 <= idx < n_shards:
        raise ValueError(f"shard index {idx} out of range for {n_shards} shards")
    return f"shard-{idx:05d}-of-{n_shards:05d}.jsonl"


class ShardedTrialStore:
    """N hash-partitioned :class:`TrialStore` shards under one directory.

    Parameters
    ----------
    root:
        Directory holding the shard files (created on first append).
    n_shards:
        Shard count of the *write* layout.  Reads are layout-agnostic:
        :meth:`load` merges every ``shard-*-of-*.jsonl`` file present,
        including files written under a different shard count, so
        resharding a store is simply reopening it with a new
        ``n_shards``.
    durability:
        Per-append durability knob, passed through to every shard (see
        :class:`TrialStore`).
    """

    def __init__(
        self,
        root: str | Path,
        n_shards: int = 4,
        durability: str = "flush",
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.root = Path(root)
        self.n_shards = n_shards
        self.durability = durability
        #: Write-layout shards, by index (lazily opened for append).
        self._shards: dict[int, TrialStore] = {}
        #: Read-only stores for shard files of *other* layouts found by
        #: :meth:`load` (kept so their records stay part of the view).
        self._legacy: list[TrialStore] = []
        # One lock per write shard: appends and background compaction
        # must not interleave a rewrite with an append.
        self._locks: dict[int, threading.Lock] = {}
        self._view_lock = threading.Lock()
        self._records: list[tuple[int, int, TrialRecord]] = []  # (fp, trial_id, rec)
        self._by_config: dict[str, TrialRecord] = {}
        self._sorted = True
        #: Quarantined ``(lineno, raw)`` pairs per shard file name.
        self.quarantined: dict[str, list[tuple[int, str]]] = {}
        self._compactor: threading.Thread | None = None
        self._gauges: dict[int, object] = {}

    # -- layout --------------------------------------------------------------

    def shard_path(self, idx: int) -> Path:
        """Path of write-layout shard ``idx``."""
        return self.root / shard_filename(idx, self.n_shards)

    def shard_paths(self) -> list[Path]:
        """Every shard file currently present, sorted by name."""
        if not self.root.exists():
            return []
        return sorted(p for p in self.root.iterdir() if _SHARD_RE.match(p.name))

    def shard_for(self, config: "ModelConfig") -> int:
        """Home shard index of ``config`` under the write layout."""
        return shard_index(config, self.n_shards)

    def _shard(self, idx: int) -> TrialStore:
        store = self._shards.get(idx)
        if store is None:
            store = TrialStore(self.shard_path(idx), durability=self.durability)
            self._shards[idx] = store
            self._locks.setdefault(idx, threading.Lock())
        return store

    def _gauge(self, idx: int):
        gauge = self._gauges.get(idx)
        if gauge is None:
            gauge = obs.gauge("repro_nas_shard_records", shard=str(idx))
            self._gauges[idx] = gauge
        return gauge

    # -- collection view -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._records.sort(key=lambda t: (t[0], t[1]))
            self._sorted = True

    def __iter__(self) -> Iterator[TrialRecord]:
        """Merged records in deterministic ``(fingerprint, trial_id)`` order.

        The order is a pure function of the record *set* — shard count,
        append order and worker scheduling cannot perturb it, which is
        what makes chaos-certification byte comparisons meaningful.
        """
        with self._view_lock:
            self._ensure_sorted()
            snapshot = [rec for _, _, rec in self._records]
        return iter(snapshot)

    def records(self, ok_only: bool = False) -> list[TrialRecord]:
        """Merged records (optionally successful only), deterministic order."""
        if ok_only:
            return [r for r in self if r.ok]
        return list(self)

    def find(self, config: "ModelConfig") -> TrialRecord | None:
        """The record for a configuration, if any shard holds one."""
        return self._by_config.get(config.config_id())

    def analysis_records(self) -> list[dict]:
        """Flat objective records of successful trials (Pareto input)."""
        return [r.as_analysis_record() for r in self.records(ok_only=True)]

    def _index(self, record: TrialRecord) -> None:
        with self._view_lock:
            self._records.append(
                (record_fingerprint(record.config), record.trial_id, record)
            )
            self._by_config[record.config.config_id()] = record
            self._sorted = False

    # -- appends -------------------------------------------------------------

    def add(self, record: TrialRecord) -> None:
        """Route the record to its home shard and append it there."""
        idx = self.shard_for(record.config)
        shard = self._shard(idx)
        with self._locks[idx]:
            shard.add(record)
        self._index(record)
        self._gauge(idx).set(len(shard))

    def flush(self) -> None:
        """Flush every open shard append handle."""
        for shard in self._shards.values():
            shard.flush()

    def close(self) -> None:
        """Close every shard (waiting for background compaction first)."""
        self.wait_for_compaction()
        for shard in list(self._shards.values()) + self._legacy:
            shard.close()

    def __enter__(self) -> "ShardedTrialStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- load + compaction ---------------------------------------------------

    def load(self, strict: bool = False, compact: str = "eager") -> int:
        """Load every shard file in the directory; returns records loaded.

        ``compact`` controls when corrupt shard tails are rewritten:

        - ``"eager"`` — each damaged shard is quarantined and atomically
          rewritten inline, exactly like ``TrialStore.load``;
        - ``"background"`` — records are available immediately; a
          compactor thread rewrites the damaged shards concurrently
          (join it with :meth:`wait_for_compaction`);
        - ``"defer"`` — rewrites wait until :meth:`compact_all` or the
          first append to the damaged shard.
        """
        if compact not in ("eager", "background", "defer"):
            raise ValueError(
                f"compact must be 'eager', 'background' or 'defer', got {compact!r}"
            )
        self.wait_for_compaction()
        with self._view_lock:
            self._records = []
            self._by_config = {}
            self._sorted = True
        # Drop any previously opened shard objects: TrialStore.load
        # appends to its in-memory records, so reloading through a
        # cached shard would double-count.
        for shard in list(self._shards.values()) + self._legacy:
            shard.close()
        self._shards = {}
        self._legacy = []
        self.quarantined = {}
        count = 0
        dirty: list[TrialStore] = []
        for path in self.shard_paths():
            match = _SHARD_RE.match(path.name)
            assert match is not None
            idx, total = int(match.group(1)), int(match.group(2))
            if total == self.n_shards:
                store = self._shard(idx)
            else:  # a previous layout generation: readable, never appended
                store = TrialStore(path, durability=self.durability)
                self._legacy.append(store)
            count += store.load(strict=strict, compact=False)
            for record in store:
                self._index(record)
            if store.quarantined:
                self.quarantined[path.name] = list(store.quarantined)
                dirty.append(store)
            if total == self.n_shards:
                self._gauge(idx).set(len(store))
        if dirty:
            if compact == "eager":
                for store in dirty:
                    self._compact_store(store)
            elif compact == "background":
                self._compactor = threading.Thread(
                    target=self._compact_many,
                    args=(dirty,),
                    name="repro-shard-compactor",
                    daemon=True,
                )
                self._compactor.start()
        return count

    def _lock_for(self, store: TrialStore) -> threading.Lock:
        for idx, shard in self._shards.items():
            if shard is store:
                return self._locks[idx]
        return self._view_lock  # legacy shards: any exclusive lock works

    def _compact_store(self, store: TrialStore) -> None:
        with self._lock_for(store):
            if store.compact():
                _COMPACTIONS.inc()

    def _compact_many(self, stores: list[TrialStore]) -> None:
        for store in stores:
            self._compact_store(store)

    def compact_all(self) -> int:
        """Rewrite every shard with a pending quarantine; returns count."""
        self.wait_for_compaction()
        done = 0
        for store in list(self._shards.values()) + self._legacy:
            if store.compaction_pending:
                self._compact_store(store)
                done += 1
        return done

    def wait_for_compaction(self, timeout: float | None = None) -> None:
        """Block until the background compactor (if any) finishes."""
        if self._compactor is not None:
            self._compactor.join(timeout)
            if not self._compactor.is_alive():
                self._compactor = None

    @property
    def compaction_pending(self) -> bool:
        """Whether any shard still has a deferred quarantine rewrite."""
        return any(
            s.compaction_pending for s in list(self._shards.values()) + self._legacy
        )

    # -- manifests -----------------------------------------------------------

    def write_manifest(self, manifest: RunManifest) -> None:
        """Write the sweep manifest next to every write-layout shard."""
        for idx in range(self.n_shards):
            self._shard(idx).write_manifest(manifest)

    def verify_or_write_manifest(self, manifest: RunManifest) -> None:
        """Resume gate across all shards.

        Every existing shard manifest must match (each raises
        :class:`~repro.nas.storage.ResumeMismatchError` otherwise);
        missing ones are written.  Legacy-layout shards are verified
        too — their records participate in resume skipping, so they
        must come from the same sweep.
        """
        for idx in range(self.n_shards):
            self._shard(idx).verify_or_write_manifest(manifest)
        for store in self._legacy:
            store.verify_or_write_manifest(manifest)

    def read_manifest(self) -> RunManifest | None:
        """The first shard manifest found, or ``None``."""
        for store in list(self._shards.values()) + self._legacy:
            manifest = store.read_manifest()
            if manifest is not None:
                return manifest
        for idx in range(self.n_shards):
            store = TrialStore(self.shard_path(idx))
            manifest = store.read_manifest()
            if manifest is not None:
                return manifest
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedTrialStore(root={str(self.root)!r}, n_shards={self.n_shards}, "
            f"records={len(self)})"
        )
