"""The sweep coordinator: worker nodes, lease pumping, exactly-once commits.

Execution model
---------------
**At-least-once execution, exactly-once commit.**  Worker nodes (one
thread each, optionally owning a private process pool — a "process
group") claim trial batches from the :class:`~repro.nas.fabric.LeaseTable`
and run them through a sibling :class:`~repro.nas.experiment.Experiment`.
Results are *submitted*, never written: the coordinator's main loop is
the only writer.  It drains the commit queue, deduplicates against the
sharded store (a reclaimed trial may be executed twice; it is committed
once), appends, and marks the trial done.  Trial records are pure
functions of ``(trial_id, config)`` — the latency jitter is keyed by the
config, the surrogate is seeded — so a duplicated execution produces a
byte-identical record and deduplication loses nothing.

Liveness is lease-based: a node that dies (``NodeKilledError``, a
SIGKILLed pool worker under ``on_worker_loss="die"``, a hardware fault)
simply stops heartbeating; the coordinator reclaims its lease after the
TTL and the trials are re-leased to a surviving node.  When *every* node
is gone the coordinator itself finishes the remaining work inline
(``self_execute``), so a sweep always terminates.

Because commits — and therefore progress callbacks — happen in the
coordinator's thread, a ``KeyboardInterrupt`` raised by a progress hook
(:func:`repro.faults.interrupt_after`, or a user's Ctrl-C) propagates
from :meth:`FabricSweep.run` exactly like the serial runner's: committed
trials are durable, the in-flight ones are lost and re-run on resume.

Elasticity: :meth:`FabricSweep.add_node` may be called mid-run (e.g.
from a progress hook); the node is attached and started immediately and
starts claiming from the queues like any founding member.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import repro.obs as obs
from repro.nas.experiment import Experiment
from repro.nas.fabric.lease import Lease, LeaseTable, TrialTask
from repro.nas.fabric.store import ShardedTrialStore
from repro.nas.retry import (
    ErrorKind,
    NodeKilledError,
    PermanentTrialError,
    RetryPolicy,
    WorkerLostError,
    classify_error,
)
from repro.nas.storage import TrialStore
from repro.nas.strategies import SearchStrategy
from repro.nas.trial import TrialRecord, TrialStatus
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nas.config import ModelConfig
    from repro.nas.evaluators import AccuracyEvaluator, EvalResult
    from repro.parallel.executor import Executor

__all__ = [
    "NodeEvaluator",
    "WorkerNode",
    "FabricSweep",
    "FabricResult",
    "run_fabric_sweep",
]

_LOG = get_logger("nas.fabric.coordinator")

# Module-level instrument handles: cached once, no-ops while obs is disabled.
_COMMITS = obs.counter("repro_nas_fabric_commits_total")
_DUPES = obs.counter("repro_nas_fabric_duplicate_commits_total")
_NODE_DEATHS = obs.counter("repro_nas_fabric_node_deaths_total")
_NODES_ALIVE = obs.gauge("repro_nas_fabric_nodes_alive")


def _node_eval(
    task: "tuple[AccuracyEvaluator, ModelConfig, str | None]",
) -> "EvalResult":
    """Pool-side evaluation task: optionally die first, then evaluate.

    Top-level (picklable) on purpose; the latch makes a scheduled worker
    kill fire exactly once per path, even across pool respawns and sweep
    resumes.
    """
    evaluator, config, latch_path = task
    if latch_path is not None:
        from repro.faults.harness import KillSwitch  # lazy: avoids an import cycle

        KillSwitch(latch_path).fire_once()
    return evaluator.evaluate(config)


class NodeEvaluator:
    """Routes accuracy evaluation through a worker node's process pool.

    This is what makes a :class:`WorkerNode` a *process group*: every
    ``evaluate`` ships to the node's private
    :class:`~repro.parallel.ProcessPoolExecutorBackend` via
    ``map_resilient``, so a SIGKILLed pool worker surfaces as a
    structured item failure instead of sinking the node thread.

    Parameters
    ----------
    inner:
        The real (picklable) evaluator.
    executor:
        The node's executor.
    kill_config_ids:
        ``config_id()`` values whose evaluation must suffer one worker
        kill (``os._exit`` inside the pool, latched once-only under
        ``latch_dir`` — crash-safe across resumes).
    on_worker_loss:
        What an *unrecovered* pool death (``map_resilient`` gave the item
        up after ``max_requeues``) means:

        - ``"retry"`` — raise :class:`~repro.nas.retry.WorkerLostError`
          (transient): the node's retry policy re-runs the trial on the
          respawned pool.
        - ``"die"`` — raise :class:`~repro.nas.retry.NodeKilledError`:
          the kill took the whole node down.  The node thread unwinds
          without heartbeating again, the lease TTL-expires, and the
          coordinator re-leases the in-flight trials to another node.
    """

    def __init__(
        self,
        inner: "AccuracyEvaluator",
        executor: "Executor",
        kill_config_ids: "frozenset[str] | tuple" = (),
        latch_dir: str | Path | None = None,
        on_worker_loss: str = "retry",
    ) -> None:
        if on_worker_loss not in ("retry", "die"):
            raise ValueError(
                f"on_worker_loss must be 'retry' or 'die', got {on_worker_loss!r}"
            )
        self.inner = inner
        self.executor = executor
        self.kill_config_ids = frozenset(kill_config_ids)
        if self.kill_config_ids and latch_dir is None:
            raise ValueError("kill_config_ids requires latch_dir for the once-only latches")
        self.latch_dir = Path(latch_dir) if latch_dir is not None else None
        self.on_worker_loss = on_worker_loss
        #: Worker kills that actually fired through this node's pool.
        self.kills_fired = 0

    def evaluate(self, config: "ModelConfig") -> "EvalResult":
        cid = config.config_id()
        latch: str | None = None
        if cid in self.kill_config_ids:
            assert self.latch_dir is not None
            latch = str(self.latch_dir / f"kill-{cid}.latch")
        fired_before = latch is not None and Path(latch).exists()
        [result] = self.executor.map_resilient(_node_eval, [(self.inner, config, latch)])
        if latch is not None and not fired_before and Path(latch).exists():
            self.kills_fired += 1
        if result.ok:
            return result.value
        if result.error_type == "BrokenProcessPool":
            if self.on_worker_loss == "die":
                raise NodeKilledError(
                    f"pool worker died evaluating {cid} and took the node with it"
                )
            raise WorkerLostError(
                f"pool worker died evaluating {cid}: {result.error}"
            )
        raise PermanentTrialError(f"{result.error_type}: {result.error}")


class WorkerNode:
    """One sweep worker: a claim/run/submit/heartbeat loop in a thread.

    A node owns (optionally) a private process pool — its *process
    group* — and a sibling experiment sharing the coordinator's
    architecture-metrics cache.  It never touches the store: results go
    to the coordinator's commit queue.

    Parameters
    ----------
    node_id:
        Stable identity (lease bookkeeping, fault schedules).
    executor:
        Optional :class:`~repro.parallel.Executor`; when given, every
        evaluation routes through it via :class:`NodeEvaluator`.  The
        node closes an executor it was handed when it shuts down.
    evaluator:
        Override for the sweep's shared evaluator (rare; tests).
    kill_config_ids / latch_dir / on_worker_loss:
        Worker-kill chaos knobs, forwarded to :class:`NodeEvaluator`
        (require ``executor``).
    fault_plan:
        Optional :class:`~repro.faults.NodeFaultPlan` consulted before
        each trial (node kills) and after (heartbeat loss / stalls).
    home_queue:
        Preferred pending queue; defaults to the node's join order
        modulo the queue count.  An empty home queue makes the node
        steal from the longest queue.
    """

    def __init__(
        self,
        node_id: str,
        executor: "Executor | None" = None,
        evaluator: "AccuracyEvaluator | None" = None,
        kill_config_ids: "tuple | frozenset" = (),
        latch_dir: str | Path | None = None,
        on_worker_loss: str = "retry",
        fault_plan: object | None = None,
        home_queue: int | None = None,
        poll_s: float = 0.002,
    ) -> None:
        if kill_config_ids and executor is None:
            raise ValueError("kill_config_ids requires a process-pool executor to kill")
        self.node_id = node_id
        self.executor = executor
        self.fault_plan = fault_plan
        self.home_queue = home_queue
        self.poll_s = poll_s
        self._evaluator_override = evaluator
        self._kill_config_ids = kill_config_ids
        self._latch_dir = latch_dir
        self._on_worker_loss = on_worker_loss
        self._sweep: "FabricSweep | None" = None
        self._experiment: Experiment | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        #: Whether the node loop is (still) running.
        self.alive = False
        #: Why the node died, when it did ("" while healthy).
        self.death_reason = ""
        #: Trials this node finished executing (committed or not).
        self.trials_run = 0

    # -- wiring --------------------------------------------------------------

    def attach(self, sweep: "FabricSweep") -> None:
        """Bind to a sweep: build this node's evaluator and experiment."""
        self._sweep = sweep
        inner = self._evaluator_override or sweep.evaluator
        if self.executor is not None:
            inner = NodeEvaluator(
                inner,
                executor=self.executor,
                kill_config_ids=self._kill_config_ids,
                latch_dir=self._latch_dir,
                on_worker_loss=self._on_worker_loss,
            )
        self.node_evaluator = inner
        self._experiment = sweep.template.with_evaluator(inner)

    def start(self) -> None:
        if self._thread is not None:
            return
        self.alive = True
        self._thread = threading.Thread(
            target=self._loop, name=f"repro-node-{self.node_id}", daemon=True
        )
        self._thread.start()

    def request_stop(self) -> None:
        self._stop.set()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)
        if self.executor is not None and not self.executor.closed:
            self.executor.close()

    # -- the node loop -------------------------------------------------------

    def _loop(self) -> None:
        sweep = self._sweep
        assert sweep is not None and sweep.table is not None
        try:
            while not self._stop.is_set() and sweep.accepting:
                lease = sweep.table.claim(self.node_id, home=self.home_queue)
                if lease is None:
                    if sweep.table.finished:
                        break
                    time.sleep(self.poll_s)
                    continue
                if not self._run_lease(lease):
                    break
            self.death_reason = ""
        except NodeKilledError as exc:
            # Deliberately *no* release: a killed node cannot talk to the
            # coordinator.  Its lease TTL-expires and is reclaimed.
            self.death_reason = str(exc) or "node killed"
            _NODE_DEATHS.inc()
            _LOG.warning("node %r died: %s", self.node_id, self.death_reason)
        except BaseException as exc:  # noqa: BLE001 - reported to the coordinator
            self.death_reason = f"{type(exc).__name__}: {exc}"
            _NODE_DEATHS.inc()
            sweep.report_node_error(self, exc)
        finally:
            self.alive = False

    def _run_lease(self, lease: Lease) -> bool:
        """Run one lease's tasks; ``False`` means "stop the loop"."""
        sweep = self._sweep
        assert sweep is not None and sweep.table is not None
        for task in list(lease.tasks):
            if self._stop.is_set() or not sweep.accepting:
                sweep.table.release(lease.lease_id)
                return False
            if self.fault_plan is not None:
                # May raise NodeKilledError: the node dies mid-lease.
                self.fault_plan.before_trial(self.node_id, self.trials_run)
            assert self._experiment is not None
            record = self._experiment.run_trial(task.trial_id, task.config)
            self.trials_run += 1
            if self.fault_plan is not None:
                stall = self.fault_plan.stall_s(self.node_id, self.trials_run)
                if stall > 0:  # slow network: result still in flight at TTL
                    time.sleep(stall)
            sweep.submit(lease, task, record)
            if self.fault_plan is not None and self.fault_plan.heartbeat_suppressed(
                self.node_id, self.trials_run
            ):
                continue
            if not sweep.table.heartbeat(lease.lease_id):
                # The lease was reclaimed (we were presumed dead): abandon
                # the batch; anything we already submitted deduplicates.
                return True
        return True


@dataclass
class FabricResult:
    """Outcome of a distributed fabric sweep."""

    store: ShardedTrialStore
    launched: int
    succeeded: int
    failed: int
    duration_s: float
    skipped: int = 0  # resumed trials served from the store
    poisoned: int = 0  # trials quarantined after exhausting max_leases
    duplicates: int = 0  # stale submissions dropped by commit dedupe
    self_executed: int = 0  # trials the coordinator ran after losing all nodes
    claims: int = 0
    reclaims: int = 0
    steals: int = 0
    node_trials: dict[str, int] = field(default_factory=dict)
    node_deaths: dict[str, str] = field(default_factory=dict)

    @property
    def valid_outcomes(self) -> int:
        """Successful trial count (the paper's '1,717 valid outcomes')."""
        return self.succeeded


class FabricSweep:
    """Coordinates worker nodes over a sharded store and a lease table.

    Single-sweep, single-use: construct, :meth:`add_node` some workers,
    :meth:`run`.  See the module docstring for the execution model; see
    :class:`~repro.nas.experiment.Experiment` for the meaning of the
    shared knobs (they are forwarded to the template experiment every
    node derives from, so fabric records match serial records exactly).

    Parameters
    ----------
    evaluator / strategy / failure_injector / input_hw / profiles /
    latency_jitter / jitter_seed / retry_policy:
        Exactly as :class:`~repro.nas.experiment.Experiment`.
    store:
        The sharded trial store (the coordinator is its only writer).
    batch_size / lease_ttl_s / max_leases:
        Lease-table knobs (:class:`~repro.nas.fabric.LeaseTable`).
    resume:
        Load the store first, verify its run manifest against this
        sweep's (:class:`~repro.nas.storage.ResumeMismatchError` on a
        mismatch) and skip already-recorded configurations.
    progress:
        Progress consumer (listener or legacy callable), invoked in the
        coordinator thread at commit time — a raised
        ``KeyboardInterrupt`` stops the sweep like Ctrl-C.
    self_execute:
        Whether the coordinator finishes remaining work inline once
        every node is dead (default on; disabling raises
        :class:`~repro.nas.retry.WorkerLostError` instead of hanging).
    """

    def __init__(
        self,
        evaluator: "AccuracyEvaluator",
        strategy: SearchStrategy,
        store: ShardedTrialStore,
        batch_size: int = 1,
        lease_ttl_s: float = 5.0,
        max_leases: int = 5,
        retry_policy: RetryPolicy | None = None,
        failure_injector: object | None = None,
        input_hw: tuple[int, int] = (100, 100),
        profiles: dict | None = None,
        latency_jitter: float = 0.006,
        jitter_seed: int = 0,
        resume: bool = False,
        progress: "Callable[[int, int, TrialRecord], None] | obs.ProgressListener | None" = None,
        self_execute: bool = True,
        poll_s: float = 0.002,
    ) -> None:
        self.evaluator = evaluator
        self.store = store
        self.batch_size = batch_size
        self.lease_ttl_s = lease_ttl_s
        self.max_leases = max_leases
        self.resume = resume
        self.progress = progress
        self.self_execute = self_execute
        self.poll_s = poll_s
        #: The reference experiment nodes derive theirs from (shared
        #: architecture-metrics cache; also the self-execute runner).
        self.template = Experiment(
            evaluator,
            strategy,
            store=TrialStore(),
            failure_injector=failure_injector,
            input_hw=input_hw,
            profiles=profiles,
            latency_jitter=latency_jitter,
            jitter_seed=jitter_seed,
            retry_policy=retry_policy,
        )
        self.table: LeaseTable | None = None
        self.accepting = False
        self._running = False
        self._nodes: list[WorkerNode] = []
        self._commits: "queue.Queue[tuple[int, TrialTask, TrialRecord]]" = queue.Queue()
        self._node_errors: "queue.Queue[tuple[WorkerNode, BaseException]]" = queue.Queue()
        # Per-run counters (reset by run()).
        self._launched = self._succeeded = self._failed = 0
        self._duplicates = self._poison_cursor = self._self_executed = 0
        self._total = 0

    # -- membership ----------------------------------------------------------

    @property
    def nodes(self) -> list[WorkerNode]:
        return list(self._nodes)

    def add_node(self, node: WorkerNode) -> WorkerNode:
        """Attach (and, mid-run, immediately start) a worker node."""
        if node.home_queue is None:
            node.home_queue = len(self._nodes) % max(self.store.n_shards, 1)
        node.attach(self)
        self._nodes.append(node)
        if self._running:
            node.start()
            _LOG.info("node %r joined the sweep mid-run", node.node_id)
        return node

    def alive_nodes(self) -> int:
        return sum(1 for node in self._nodes if node.alive)

    # -- node -> coordinator channel ----------------------------------------

    def submit(self, lease: Lease, task: TrialTask, record: TrialRecord) -> None:
        """Queue one executed trial for commit (called from node threads)."""
        self._commits.put((lease.lease_id, task, record))

    def report_node_error(self, node: WorkerNode, exc: BaseException) -> None:
        """Surface a node-loop crash to the coordinator."""
        self._node_errors.put((node, exc))

    # -- the run -------------------------------------------------------------

    def run(self, budget: int) -> FabricResult:
        """Run the sweep to completion (or first fatal error)."""
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        with obs.span(
            "fabric.run",
            budget=budget,
            nodes=len(self._nodes),
            shards=self.store.n_shards,
        ):
            return self._run_inner(budget)

    def _plan_tasks(self, budget: int) -> tuple[list[TrialTask], int]:
        manifest = self.template.run_manifest()
        if self.resume:
            self.store.load(strict=False, compact="background")
            self.store.verify_or_write_manifest(manifest)
        elif self.store.read_manifest() is None:
            self.store.write_manifest(manifest)
        tasks: list[TrialTask] = []
        skipped = 0
        for trial_id, config in self.template.propose_trials(budget):
            if self.resume:
                existing = self.store.find(config)
                if existing is not None:
                    skipped += 1
                    if existing.ok:
                        self.template.strategy.observe_record(config, existing)
                    continue
            tasks.append(
                TrialTask(trial_id, config, shard=self.store.shard_for(config))
            )
        return tasks, skipped

    def _run_inner(self, budget: int) -> FabricResult:
        started = time.perf_counter()
        listener = obs.ProgressFanout(
            [obs.as_listener(self.progress), obs.ObsProgressListener()]
        )
        tasks, skipped = self._plan_tasks(budget)
        self._launched = self._succeeded = self._failed = 0
        self._duplicates = self._poison_cursor = self._self_executed = 0
        self._total = len(tasks)
        self.table = LeaseTable(
            tasks,
            n_queues=max(self.store.n_shards, 1),
            batch_size=self.batch_size,
            ttl_s=self.lease_ttl_s,
            max_leases=self.max_leases,
        )
        self.accepting = True
        self._running = True
        try:
            for node in self._nodes:
                node.start()
            while not self.table.finished:
                progressed = self._drain_commits(listener)
                self.table.reclaim()
                self._commit_poisoned(listener)
                self._check_node_errors()
                _NODES_ALIVE.set(self.alive_nodes())
                if progressed:
                    continue
                if self.alive_nodes() == 0 and self.table.outstanding > 0:
                    self._self_execute_step()
                else:
                    time.sleep(self.poll_s)
            self._drain_commits(listener)  # late duplicates from stale workers
        finally:
            self.accepting = False
            self._running = False
            for node in self._nodes:
                node.request_stop()
            for node in self._nodes:
                node.join(timeout=10.0)
            self.store.flush()
            _NODES_ALIVE.set(0)
        stats = self.table.stats
        result = FabricResult(
            store=self.store,
            launched=self._launched,
            succeeded=self._succeeded,
            failed=self._failed,
            duration_s=time.perf_counter() - started,
            skipped=skipped,
            poisoned=stats.poisoned,
            duplicates=self._duplicates,
            self_executed=self._self_executed,
            claims=stats.claims,
            reclaims=stats.reclaims,
            steals=stats.steals,
            node_trials={n.node_id: n.trials_run for n in self._nodes},
            node_deaths={
                n.node_id: n.death_reason for n in self._nodes if n.death_reason
            },
        )
        listener.on_run_end(result)
        return result

    # -- commit path (coordinator thread only) -------------------------------

    def _drain_commits(self, listener: "obs.ProgressFanout") -> int:
        assert self.table is not None
        progressed = 0
        while True:
            try:
                lease_id, task, record = self._commits.get_nowait()
            except queue.Empty:
                return progressed
            progressed += 1
            if self.store.find(task.config) is not None:
                # A reclaimed trial executed twice (or a stale worker
                # reported after its lease died): records are pure
                # functions of (trial_id, config), so dropping the copy
                # loses nothing.
                self._duplicates += 1
                _DUPES.inc()
                self.table.mark_done(task.trial_id)
                continue
            listener.on_trial_start(task.trial_id, task.config)
            self.store.add(record)
            self.table.mark_done(task.trial_id)
            self._launched += 1
            _COMMITS.inc()
            if record.ok:
                self._succeeded += 1
                self.template.strategy.observe_record(task.config, record)
            else:
                self._failed += 1
            # May raise (interrupt_after / Ctrl-C): by design this
            # happens in the coordinator thread, after the commit.
            listener.on_trial_end(self._launched, self._total, record)

    def _commit_poisoned(self, listener: "obs.ProgressFanout") -> None:
        """Turn newly poisoned tasks into durable failed records."""
        assert self.table is not None
        poisoned = self.table.poisoned
        while self._poison_cursor < len(poisoned):
            task = poisoned[self._poison_cursor]
            self._poison_cursor += 1
            if self.store.find(task.config) is not None:
                continue
            record = TrialRecord(
                trial_id=task.trial_id,
                config=task.config,
                status=TrialStatus.FAILED,
                error=(
                    f"poison trial: lost its worker {task.lease_count} time(s) "
                    f"(max_leases={self.table.max_leases})"
                ),
                error_kind="poison",
            )
            listener.on_trial_start(task.trial_id, task.config)
            self.store.add(record)
            self._launched += 1
            self._failed += 1
            _COMMITS.inc()
            listener.on_trial_end(self._launched, self._total, record)

    def _check_node_errors(self) -> None:
        """Re-raise fatal node crashes; log and absorb the rest."""
        while True:
            try:
                node, exc = self._node_errors.get_nowait()
            except queue.Empty:
                return
            if classify_error(exc) is ErrorKind.FATAL:
                raise exc
            _LOG.warning(
                "node %r crashed (%s: %s); its lease will be reclaimed",
                node.node_id, type(exc).__name__, exc,
            )

    def _self_execute_step(self) -> None:
        """All nodes are dead: claim one batch and run it inline."""
        assert self.table is not None
        lease = self.table.claim("coordinator")
        if lease is None:
            # Remaining work is still leased to dead nodes; wait for the
            # reclaim pump to expire those leases.
            time.sleep(self.poll_s)
            return
        for task in list(lease.tasks):
            record = self.template.run_trial(task.trial_id, task.config)
            self._self_executed += 1
            self.submit(lease, task, record)
            self.table.heartbeat(lease.lease_id)


def run_fabric_sweep(
    evaluator: "AccuracyEvaluator",
    strategy: SearchStrategy,
    root: str | Path,
    budget: int,
    n_shards: int = 4,
    n_nodes: int = 2,
    node_workers: int | None = None,
    durability: str = "flush",
    resume: bool = False,
    **sweep_kwargs: object,
) -> FabricResult:
    """Convenience driver: build a store + N nodes, run, close everything.

    ``node_workers`` gives every node a private process pool of that
    size (a true process group); ``None`` evaluates in the node threads
    — right for the surrogate evaluator, whose cost is dwarfed by
    pickling.  Remaining keyword arguments go to :class:`FabricSweep`.
    """
    if n_nodes < 0:
        raise ValueError(f"n_nodes must be >= 0, got {n_nodes}")
    store = ShardedTrialStore(root, n_shards=n_shards, durability=durability)
    sweep = FabricSweep(
        evaluator, strategy, store, resume=resume, **sweep_kwargs
    )
    for i in range(n_nodes):
        executor = None
        if node_workers is not None:
            from repro.parallel.executor import ProcessPoolExecutorBackend

            executor = ProcessPoolExecutorBackend(workers=node_workers)
        sweep.add_node(WorkerNode(f"node-{i}", executor=executor))
    try:
        return sweep.run(budget)
    finally:
        store.close()
