"""Lease-based work claims with deadline reclaim and work stealing.

The coordinator's source of truth for *who is running what*.  Work is
handed out as **leases**: a worker claims a batch of trials together
with a monotonic-clock deadline; liveness is proven by heartbeats that
push the deadline forward.  A worker that dies (or loses its network,
or stalls past the TTL) simply stops heartbeating — its lease expires
and the **reclaim loop** returns the unfinished trials to the pending
queues for another worker to pick up.

Failure handling rides the :mod:`repro.nas.retry` taxonomy:

- a missed heartbeat is a :class:`~repro.nas.retry.WorkerLostError` —
  *transient* by classification, so the trials are re-leased;
- a trial that keeps losing its workers (``lease_count`` reaching
  ``max_leases``) is presumed **poison** — it is quarantined out of the
  queues (and recorded as a failed trial by the coordinator) instead of
  killing workers forever;
- fatal/permanent release reasons poison the batch immediately.

Pending work is organized as one queue per shard and claims prefer the
worker's *home* queue (keeping a node's appends mostly shard-local); an
idle worker whose home queue drained **steals** from the longest queue
(:func:`repro.parallel.pick_steal_victim`).

Everything here is wall-clock free: deadlines and heartbeat ages are
computed with ``time.monotonic()`` (injectable for tests), so an NTP
step can neither spuriously expire every lease nor keep a dead worker
alive.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

import repro.obs as obs
from repro.nas.retry import ErrorKind, WorkerLostError, classify_error
from repro.parallel.scheduler import pick_steal_victim
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nas.config import ModelConfig

__all__ = ["TrialTask", "Lease", "LeaseTable"]

_LOG = get_logger("nas.fabric.lease")

# Module-level instrument handles: cached once, no-ops while obs is disabled.
_CLAIMS = obs.counter("repro_nas_lease_claims_total")
_HEARTBEATS = obs.counter("repro_nas_lease_heartbeats_total")
_RECLAIMS = obs.counter("repro_nas_lease_reclaims_total")
_STEALS = obs.counter("repro_nas_work_steals_total")
_POISONED = obs.counter("repro_nas_poison_trials_total")
_PENDING = obs.gauge("repro_nas_fabric_pending_trials")
_ACTIVE = obs.gauge("repro_nas_fabric_active_leases")


@dataclass
class TrialTask:
    """One unit of leased work: a trial to run and where its record goes."""

    trial_id: int
    config: "ModelConfig"
    shard: int
    #: Times this task has been handed out (1 after the first claim).
    lease_count: int = 0


@dataclass
class Lease:
    """A worker's claim on a batch of tasks, valid until ``expires_at``.

    ``expires_at`` is a ``time.monotonic()`` instant — comparable only
    inside the coordinator process, immune to wall-clock steps.
    """

    lease_id: int
    worker_id: str
    tasks: list[TrialTask]
    expires_at: float
    issued_at: float
    heartbeats: int = 0

    def trial_ids(self) -> list[int]:
        return [t.trial_id for t in self.tasks]


@dataclass
class _Stats:
    claims: int = 0
    heartbeats: int = 0
    reclaims: int = 0
    steals: int = 0
    poisoned: int = 0
    releases: int = 0


class LeaseTable:
    """Thread-safe lease bookkeeping for one sweep.

    Parameters
    ----------
    n_queues:
        Pending-queue count (normally the store's shard count); tasks
        land in queue ``task.shard % n_queues``.
    batch_size:
        Maximum tasks per claim.
    ttl_s:
        Lease time-to-live: a lease not heartbeated for this long is
        expired and reclaimed.  Must comfortably exceed one trial's
        duration — an over-eager TTL only costs duplicate *execution*,
        never duplicate *records* (the coordinator deduplicates
        commits), but wasted work is wasted work.
    max_leases:
        Times one task may be leased before it is quarantined as poison.
    clock:
        Injectable monotonic clock (tests); defaults to
        ``time.monotonic`` — never the wall clock.
    """

    def __init__(
        self,
        tasks: Iterable[TrialTask] = (),
        n_queues: int = 1,
        batch_size: int = 1,
        ttl_s: float = 30.0,
        max_leases: int = 3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if n_queues < 1:
            raise ValueError(f"n_queues must be >= 1, got {n_queues}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        if max_leases < 1:
            raise ValueError(f"max_leases must be >= 1, got {max_leases}")
        self.n_queues = n_queues
        self.batch_size = batch_size
        self.ttl_s = ttl_s
        self.max_leases = max_leases
        self._clock = clock
        self._lock = threading.Lock()
        self._queues: list[deque[TrialTask]] = [deque() for _ in range(n_queues)]
        self._active: dict[int, Lease] = {}
        self._done: set[int] = set()
        self._poisoned: list[TrialTask] = []
        self._next_lease_id = 0
        self._total = 0
        self.stats = _Stats()
        for task in tasks:
            self.add_task(task)

    # -- task intake ---------------------------------------------------------

    def add_task(self, task: TrialTask) -> None:
        """Enqueue one task (callable mid-sweep: elastic workloads)."""
        with self._lock:
            self._queues[task.shard % self.n_queues].append(task)
            self._total += 1
            _PENDING.set(self._pending_count())

    def _pending_count(self) -> int:
        return sum(len(q) for q in self._queues)

    # -- queries -------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Tasks waiting in queues."""
        with self._lock:
            return self._pending_count()

    @property
    def active_leases(self) -> int:
        with self._lock:
            return len(self._active)

    @property
    def done(self) -> int:
        """Tasks completed (committed by the coordinator)."""
        with self._lock:
            return len(self._done)

    @property
    def poisoned(self) -> list[TrialTask]:
        """Tasks quarantined after exhausting ``max_leases``."""
        with self._lock:
            return list(self._poisoned)

    @property
    def outstanding(self) -> int:
        """Tasks not yet done or poisoned (pending + leased)."""
        with self._lock:
            leased = sum(len(lease.tasks) for lease in self._active.values())
            return self._pending_count() + leased

    @property
    def finished(self) -> bool:
        """Whether every task is done or poisoned."""
        with self._lock:
            total_settled = len(self._done) + len(self._poisoned)
            return total_settled >= self._total and not self._active \
                and self._pending_count() == 0

    def queue_sizes(self) -> list[int]:
        with self._lock:
            return [len(q) for q in self._queues]

    # -- the lease lifecycle -------------------------------------------------

    def claim(self, worker_id: str, home: int | None = None) -> Lease | None:
        """Claim up to ``batch_size`` tasks; ``None`` when nothing is pending.

        Prefers the worker's ``home`` queue; when that queue is empty the
        claim *steals* from the longest non-empty queue (deterministic
        victim selection via :func:`pick_steal_victim`).
        """
        with self._lock:
            sizes = [len(q) for q in self._queues]
            stolen = False
            if home is not None:
                home %= self.n_queues
            if home is not None and sizes[home] > 0:
                source = home
            else:
                source = pick_steal_victim(sizes, exclude=() if home is None else {home})
                stolen = source is not None and home is not None
            if source is None:
                return None
            queue = self._queues[source]
            tasks: list[TrialTask] = []
            while queue and len(tasks) < self.batch_size:
                task = queue.popleft()
                if task.trial_id in self._done:
                    # A stale worker committed this trial after it was
                    # reclaimed; the requeued copy is obsolete.
                    continue
                task.lease_count += 1
                tasks.append(task)
            if not tasks:
                _PENDING.set(self._pending_count())
                return None
            now = self._clock()
            lease = Lease(
                lease_id=self._next_lease_id,
                worker_id=worker_id,
                tasks=tasks,
                expires_at=now + self.ttl_s,
                issued_at=now,
            )
            self._next_lease_id += 1
            self._active[lease.lease_id] = lease
            self.stats.claims += 1
            if stolen:
                self.stats.steals += 1
                _STEALS.inc()
            _CLAIMS.inc()
            _PENDING.set(self._pending_count())
            _ACTIVE.set(len(self._active))
            return lease

    def heartbeat(self, lease_id: int) -> bool:
        """Extend a lease's deadline; ``False`` if the lease is gone.

        A ``False`` return tells a worker its lease was reclaimed (it
        was presumed dead) — it should abandon the batch; any results it
        still submits are deduplicated by the coordinator.
        """
        with self._lock:
            lease = self._active.get(lease_id)
            if lease is None:
                return False
            lease.expires_at = self._clock() + self.ttl_s
            lease.heartbeats += 1
            self.stats.heartbeats += 1
            _HEARTBEATS.inc()
            return True

    def mark_done(self, trial_id: int) -> None:
        """Record a committed trial; removes it from any active lease."""
        with self._lock:
            self._done.add(trial_id)
            emptied = []
            for lease in self._active.values():
                lease.tasks = [t for t in lease.tasks if t.trial_id != trial_id]
                if not lease.tasks:
                    emptied.append(lease.lease_id)
            for lease_id in emptied:
                del self._active[lease_id]
            _ACTIVE.set(len(self._active))

    def release(
        self, lease_id: int, error: BaseException | None = None
    ) -> list[TrialTask]:
        """Voluntarily return a lease's unfinished tasks.

        The release reason is classified by the retry taxonomy:
        transient (the default, :class:`WorkerLostError`) re-queues the
        tasks at the *front* of their home queues; anything else poisons
        them.  Returns the poisoned tasks.
        """
        with self._lock:
            lease = self._active.pop(lease_id, None)
            if lease is None:
                return []
            self.stats.releases += 1
            poisoned = self._requeue_or_poison(lease, error)
            _PENDING.set(self._pending_count())
            _ACTIVE.set(len(self._active))
            return poisoned

    def reclaim(self, now: float | None = None) -> list[Lease]:
        """Expire and re-lease overdue leases; returns the reclaimed ones.

        The coordinator pumps this continuously.  A reclaimed lease's
        tasks go back to the front of their queues (transient worker
        loss) unless a task has hit ``max_leases`` — then it is poison.
        """
        reclaimed: list[Lease] = []
        with self._lock:
            now = self._clock() if now is None else now
            for lease_id, lease in list(self._active.items()):
                if not lease.tasks:  # fully committed; retire quietly
                    del self._active[lease_id]
                    continue
                if lease.expires_at > now:
                    continue
                del self._active[lease_id]
                error = WorkerLostError(
                    f"worker {lease.worker_id!r} missed its heartbeat "
                    f"(lease {lease_id}, ttl {self.ttl_s:.3g}s)"
                )
                self._requeue_or_poison(lease, error)
                reclaimed.append(lease)
                self.stats.reclaims += 1
                _RECLAIMS.inc()
                _LOG.warning(
                    "reclaimed lease %d from worker %r (%d trial(s) re-queued)",
                    lease_id, lease.worker_id, len(lease.tasks),
                )
            if reclaimed:
                _PENDING.set(self._pending_count())
                _ACTIVE.set(len(self._active))
        return reclaimed

    def _requeue_or_poison(
        self, lease: Lease, error: BaseException | None
    ) -> list[TrialTask]:
        """Lock held.  Returns the tasks that were poisoned."""
        kind = ErrorKind.TRANSIENT if error is None else classify_error(error)
        poisoned: list[TrialTask] = []
        for task in reversed(lease.tasks):  # appendleft preserves order
            if task.trial_id in self._done:
                continue
            exhausted = task.lease_count >= self.max_leases
            if kind is not ErrorKind.TRANSIENT or exhausted:
                self._poisoned.append(task)
                poisoned.append(task)
                self.stats.poisoned += 1
                _POISONED.inc()
                _LOG.warning(
                    "poisoned trial %d after %d lease(s): %s",
                    task.trial_id, task.lease_count,
                    error if error is not None else "non-transient release",
                )
            else:
                self._queues[task.shard % self.n_queues].appendleft(task)
        return poisoned
