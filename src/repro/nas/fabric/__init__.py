"""The distributed sweep fabric: sharded storage + lease-based workers.

Scales one NAS sweep across worker "nodes" (threads, each optionally
owning a private process pool) while keeping the results bitwise-equal
to a serial run — the property the chaos certification in
``tests/test_fabric.py`` proves under node kills, heartbeat loss,
SIGKILLed pool workers, corrupted shard tails and a Ctrl-C resume.

Three layers:

- :mod:`~repro.nas.fabric.store` — :class:`ShardedTrialStore`: N
  crash-safe JSONL shards, pure fingerprint routing, a deterministic
  merged view independent of shard count, background tail compaction.
- :mod:`~repro.nas.fabric.lease` — :class:`LeaseTable`: monotonic-clock
  work leases with heartbeats, deadline reclaim, work stealing
  (:func:`repro.parallel.pick_steal_victim`) and poison-trial
  quarantine, classified through the :mod:`repro.nas.retry` taxonomy.
- :mod:`~repro.nas.fabric.coordinator` — :class:`FabricSweep`: the
  claim/run/submit/heartbeat node loop, single-writer exactly-once
  commits, elastic membership and the self-execute fallback.
"""

from repro.nas.fabric.coordinator import (
    FabricResult,
    FabricSweep,
    NodeEvaluator,
    WorkerNode,
    run_fabric_sweep,
)
from repro.nas.fabric.lease import Lease, LeaseTable, TrialTask
from repro.nas.fabric.store import (
    ShardedTrialStore,
    record_fingerprint,
    shard_filename,
    shard_index,
)

__all__ = [
    "FabricResult",
    "FabricSweep",
    "Lease",
    "LeaseTable",
    "NodeEvaluator",
    "ShardedTrialStore",
    "TrialTask",
    "WorkerNode",
    "record_fingerprint",
    "run_fabric_sweep",
    "shard_filename",
    "shard_index",
]
