"""Neural architecture search (NNI-Retiarii substitute, paper Section 3.2).

The paper drives a grid search over a 288-configuration architectural
space for each of six input combinations (2 channel counts x 3 batch
sizes), evaluating each trial with 5-fold cross-validation on an A100.
This subpackage reproduces that machinery:

- :mod:`~repro.nas.config` / :mod:`~repro.nas.searchspace` — the Figure-2
  search space, enumeration and cardinality accounting;
- :mod:`~repro.nas.evaluators` — trial evaluation backends: real NumPy
  training with k-fold CV, and the calibrated analytic surrogate
  (:mod:`~repro.nas.surrogate`) that substitutes for the paper's 38-hour
  GPU budget (see DESIGN.md Section 2);
- :mod:`~repro.nas.strategies` — grid / random / regularized-evolution
  search strategies;
- :mod:`~repro.nas.experiment` — the trial runner: scheduling, failure
  injection, latency/memory measurement, result storage;
- :mod:`~repro.nas.retry` — trial error taxonomy, seeded retry/backoff
  policy and cooperative per-trial deadlines;
- :mod:`~repro.nas.storage` — JSONL-backed trial database with
  crash-safe reload (tail quarantine) and a resume-verified run
  manifest;
- :mod:`~repro.nas.fabric` — the distributed sweep fabric: hash-sharded
  stores, lease-based work stealing across worker nodes, and
  chaos-certified resume (bitwise-equal to a serial run).

The deterministic chaos harness that exercises this stack lives in
:mod:`repro.faults`.
"""

from repro.nas.config import ModelConfig, CHANNEL_CHOICES, BATCH_CHOICES
from repro.nas.searchspace import SearchSpace, DEFAULT_SPACE, enumerate_input_combinations
from repro.nas.trial import TrialRecord, TrialStatus
from repro.nas.evaluators import AccuracyEvaluator, EvalOutcome, EvalResult, TrainingEvaluator
from repro.nas.surrogate import SurrogateEvaluator, SurrogateCoefficients, fit_surrogate
from repro.nas.strategies import GridSearch, RandomSearch, RegularizedEvolution, SearchStrategy
from repro.nas.moo import NSGAEvolution
from repro.nas.multifidelity import (
    FidelityEvaluator,
    FidelitySurrogate,
    FidelityTrainer,
    HalvingResult,
    successive_halving,
)
from repro.nas.experiment import Experiment, ExperimentResult
from repro.nas.retry import (
    Deadline,
    ErrorKind,
    Heartbeat,
    NodeKilledError,
    PermanentTrialError,
    RetryPolicy,
    TransientTrialError,
    TrialDeadlineExceeded,
    WorkerLostError,
    classify_error,
)
from repro.nas.storage import ResumeMismatchError, RunManifest, StoreCorruptionError, TrialStore
from repro.nas.failures import FailureInjector
from repro.nas.crossval import cross_validate_model, TrainSettings
from repro.nas.fabric import (
    FabricResult,
    FabricSweep,
    LeaseTable,
    ShardedTrialStore,
    WorkerNode,
    run_fabric_sweep,
)

__all__ = [
    "ModelConfig",
    "CHANNEL_CHOICES",
    "BATCH_CHOICES",
    "SearchSpace",
    "DEFAULT_SPACE",
    "enumerate_input_combinations",
    "TrialRecord",
    "TrialStatus",
    "AccuracyEvaluator",
    "TrainingEvaluator",
    "EvalResult",
    "EvalOutcome",
    "SurrogateEvaluator",
    "SurrogateCoefficients",
    "fit_surrogate",
    "GridSearch",
    "RandomSearch",
    "RegularizedEvolution",
    "SearchStrategy",
    "NSGAEvolution",
    "FidelityEvaluator",
    "FidelitySurrogate",
    "FidelityTrainer",
    "HalvingResult",
    "successive_halving",
    "Experiment",
    "ExperimentResult",
    "TrialStore",
    "RunManifest",
    "ResumeMismatchError",
    "StoreCorruptionError",
    "FailureInjector",
    "RetryPolicy",
    "ErrorKind",
    "Deadline",
    "Heartbeat",
    "TransientTrialError",
    "WorkerLostError",
    "NodeKilledError",
    "PermanentTrialError",
    "TrialDeadlineExceeded",
    "classify_error",
    "cross_validate_model",
    "TrainSettings",
    "FabricResult",
    "FabricSweep",
    "LeaseTable",
    "ShardedTrialStore",
    "WorkerNode",
    "run_fabric_sweep",
]
