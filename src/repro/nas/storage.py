"""JSONL-backed trial database.

Long sweeps append each finished trial immediately, so an interrupted
experiment loses at most the in-flight trial; reloading the store resumes
exactly where the run stopped (the NNI experiment-database role).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.nas.config import ModelConfig
from repro.nas.trial import TrialRecord
from repro.utils.io import iter_jsonl, write_jsonl

__all__ = ["TrialStore"]


class TrialStore:
    """An append-only collection of :class:`TrialRecord`.

    Parameters
    ----------
    path:
        Optional JSONL file; when given, every :meth:`add` appends a line
        and :meth:`load` restores previous runs.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: list[TrialRecord] = []
        self._by_config: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TrialRecord]:
        return iter(self._records)

    def records(self, ok_only: bool = False) -> list[TrialRecord]:
        """All records (optionally only successful ones)."""
        if ok_only:
            return [r for r in self._records if r.ok]
        return list(self._records)

    def add(self, record: TrialRecord) -> None:
        """Append a record (and persist it if a path is configured)."""
        self._records.append(record)
        self._by_config[record.config.config_id()] = len(self._records) - 1
        if self.path is not None:
            write_jsonl(self.path, [record.to_dict()], append=True)

    def extend(self, records: Iterable[TrialRecord]) -> None:
        """Append many records."""
        for record in records:
            self.add(record)

    def find(self, config: ModelConfig) -> TrialRecord | None:
        """The latest record for a configuration, if any."""
        idx = self._by_config.get(config.config_id())
        return self._records[idx] if idx is not None else None

    def load(self) -> int:
        """Load records from the configured path; returns the count added."""
        if self.path is None:
            raise ValueError("this store has no backing path")
        if not self.path.exists():
            return 0
        count = 0
        for raw in iter_jsonl(self.path):
            record = TrialRecord.from_dict(raw)
            self._records.append(record)
            self._by_config[record.config.config_id()] = len(self._records) - 1
            count += 1
        return count

    def best_by_accuracy(self) -> TrialRecord:
        """Highest-accuracy successful trial."""
        ok = self.records(ok_only=True)
        if not ok:
            raise ValueError("store has no successful trials")
        return max(ok, key=lambda r: r.accuracy)

    def analysis_records(self) -> list[dict]:
        """Flat objective records of successful trials (Pareto input)."""
        return [r.as_analysis_record() for r in self.records(ok_only=True)]
