"""JSONL-backed trial database with crash-safe reload and a run manifest.

Long sweeps append each finished trial immediately, so an interrupted
experiment loses at most the in-flight trial; reloading the store resumes
exactly where the run stopped (the NNI experiment-database role).

Fault tolerance (see DEVELOPMENT.md "Fault tolerance"):

- **Durability knob** — each append can be left OS-buffered, flushed, or
  fsynced (:class:`TrialStore` ``durability``); the default ``"flush"``
  survives a process crash at the cost of one ``flush`` per trial.
- **Tail recovery** — a writer killed mid-append leaves a truncated (or
  garbage) last line.  :meth:`TrialStore.load` quarantines undecodable
  lines into ``<path>.quarantine`` and *rewrites the store without
  them*, so the next append cannot concatenate onto a partial line;
  loading warns but never raises for corruption (``strict=True`` opts
  back into raising).
- **Run manifest** — ``<path>.manifest.json`` pins the sweep's identity
  (strategy, seeds, search-space hash, ...).  Resume verifies the
  manifest before skipping trials, so a store from a *different* sweep
  cannot silently poison a resumed run (:class:`ResumeMismatchError`).
"""

from __future__ import annotations

import datetime as _dt
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any, Iterable, Iterator, Mapping

import repro.obs as obs
from repro.nas.config import ModelConfig
from repro.nas.trial import TrialRecord
from repro.utils.io import append_jsonl_line, atomic_write_text, read_json, scan_jsonl, write_json
from repro.utils.logging import get_logger
from repro.utils.rng import stable_hash

__all__ = ["TrialStore", "RunManifest", "ResumeMismatchError", "StoreCorruptionError"]

_LOG = get_logger("nas.storage")

# Module-level instrument handles: cached once, no-ops while obs is disabled.
_APPENDS = obs.counter("repro_store_appends_total")
_QUARANTINED = obs.counter("repro_store_quarantined_lines_total")


class ResumeMismatchError(ValueError):
    """The store's manifest does not match the resuming experiment."""


class StoreCorruptionError(ValueError):
    """Raised by ``load(strict=True)`` when the store has undecodable lines."""


@dataclass(frozen=True)
class RunManifest:
    """Identity of one sweep, written next to its JSONL store.

    ``fingerprint()`` hashes every identity field (not ``created_at``),
    so two manifests compare equal exactly when a resumed run would
    reproduce the original records for the trials it skips.
    """

    strategy: str
    space_hash: int
    seeds: Mapping[str, int] = field(default_factory=dict)
    input_hw: tuple[int, int] = (100, 100)
    latency_jitter: float = 0.0
    injector: str = "none"
    evaluator: str = ""
    created_at: str = ""
    version: int = 1

    def fingerprint(self) -> int:
        """Order-independent hash of the identity fields."""
        return stable_hash(
            "run-manifest",
            self.version,
            self.strategy,
            self.space_hash,
            tuple(sorted((str(k), int(v)) for k, v in self.seeds.items())),
            tuple(self.input_hw),
            round(float(self.latency_jitter), 12),
            self.injector,
            self.evaluator,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "strategy": self.strategy,
            "space_hash": self.space_hash,
            "seeds": dict(self.seeds),
            "input_hw": list(self.input_hw),
            "latency_jitter": self.latency_jitter,
            "injector": self.injector,
            "evaluator": self.evaluator,
            "created_at": self.created_at,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        return cls(
            strategy=str(data["strategy"]),
            space_hash=int(data["space_hash"]),
            seeds={str(k): int(v) for k, v in data.get("seeds", {}).items()},
            input_hw=tuple(int(v) for v in data.get("input_hw", (100, 100))),  # type: ignore[arg-type]
            latency_jitter=float(data.get("latency_jitter", 0.0)),
            injector=str(data.get("injector", "none")),
            evaluator=str(data.get("evaluator", "")),
            created_at=str(data.get("created_at", "")),
            version=int(data.get("version", 1)),
        )

    def diff(self, other: "RunManifest") -> list[str]:
        """Human-readable list of identity fields that differ."""
        out = []
        for name in ("strategy", "space_hash", "input_hw", "latency_jitter",
                     "injector", "evaluator", "version"):
            mine, theirs = getattr(self, name), getattr(other, name)
            if mine != theirs:
                out.append(f"{name}: stored={theirs!r} current={mine!r}")
        if dict(self.seeds) != dict(other.seeds):
            out.append(f"seeds: stored={dict(other.seeds)!r} current={dict(self.seeds)!r}")
        return out


class TrialStore:
    """An append-only collection of :class:`TrialRecord`.

    Parameters
    ----------
    path:
        Optional JSONL file; when given, every :meth:`add` appends a line
        and :meth:`load` restores previous runs.
    durability:
        Per-record append durability — ``"buffered"``, ``"flush"``
        (default) or ``"fsync"``; see :func:`repro.utils.io.append_jsonl_line`.
    """

    def __init__(self, path: str | Path | None = None, durability: str = "flush") -> None:
        if durability not in ("buffered", "flush", "fsync"):
            raise ValueError(
                f"durability must be 'buffered', 'flush' or 'fsync', got {durability!r}"
            )
        self.path = Path(path) if path is not None else None
        self.durability = durability
        self._records: list[TrialRecord] = []
        self._by_config: dict[str, int] = {}
        self._handle: IO[str] | None = None
        #: ``(lineno, raw_line)`` pairs quarantined by the last :meth:`load`.
        self.quarantined: list[tuple[int, str]] = []
        #: Valid lines held back by ``load(compact=False)`` until
        #: :meth:`compact` performs the deferred atomic rewrite.
        self._pending_rewrite: list[str] | None = None

    # -- persistence plumbing ------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        """Sidecar manifest file (``<path>.manifest.json``)."""
        if self.path is None:
            raise ValueError("this store has no backing path")
        return Path(str(self.path) + ".manifest.json")

    @property
    def quarantine_path(self) -> Path:
        """Sidecar quarantine file (``<path>.quarantine``)."""
        if self.path is None:
            raise ValueError("this store has no backing path")
        return Path(str(self.path) + ".quarantine")

    def _append_handle(self) -> IO[str]:
        if self._handle is None:
            assert self.path is not None
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def flush(self) -> None:
        """Flush any buffered appends to the OS."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        """Close the append handle (reopened lazily by the next add)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TrialStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_handle"] = None  # open files do not pickle
        return state

    # -- core collection API -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TrialRecord]:
        return iter(self._records)

    def records(self, ok_only: bool = False) -> list[TrialRecord]:
        """All records (optionally only successful ones)."""
        if ok_only:
            return [r for r in self._records if r.ok]
        return list(self._records)

    def add(self, record: TrialRecord) -> None:
        """Append a record (and persist it if a path is configured).

        A deferred quarantine rewrite (``load(compact=False)``) is
        forced first: appending onto an un-compacted store could
        concatenate the new record onto a partial tail line.
        """
        if self._pending_rewrite is not None:
            self.compact()
        self._records.append(record)
        self._by_config[record.config.config_id()] = len(self._records) - 1
        if self.path is not None:
            append_jsonl_line(self._append_handle(), record.to_dict(), self.durability)
            _APPENDS.inc()

    def extend(self, records: Iterable[TrialRecord]) -> None:
        """Append many records."""
        for record in records:
            self.add(record)

    def find(self, config: ModelConfig) -> TrialRecord | None:
        """The latest record for a configuration, if any."""
        idx = self._by_config.get(config.config_id())
        return self._records[idx] if idx is not None else None

    # -- crash-safe load -----------------------------------------------------

    def load(self, strict: bool = False, compact: bool = True) -> int:
        """Load records from the configured path; returns the count added.

        Undecodable lines (truncated tail after a crash mid-append,
        corrupted bytes) are **quarantined**: the raw line is appended to
        :attr:`quarantine_path`, a warning is logged, and the store file
        is atomically rewritten with only the valid lines so subsequent
        appends cannot concatenate onto a partial record.  With
        ``strict=True`` corruption raises :class:`StoreCorruptionError`
        instead (nothing is modified).

        ``compact=False`` defers the rewrite: the records are loaded and
        the corrupt lines recorded in :attr:`quarantined`, but the file
        is left untouched until :meth:`compact` runs (the sharded store
        compacts many shards from a background thread this way).  The
        first :meth:`add` forces the pending compaction.
        """
        if self.path is None:
            raise ValueError("this store has no backing path")
        self.quarantined = []
        self._pending_rewrite = None
        if not self.path.exists():
            return 0
        count = 0
        valid_lines: list[str] = []
        for lineno, raw, parsed in scan_jsonl(self.path):
            record: TrialRecord | None = None
            if parsed is not None:
                try:
                    record = TrialRecord.from_dict(parsed)
                except (KeyError, TypeError, ValueError):
                    record = None
            if record is None:
                self.quarantined.append((lineno, raw))
                continue
            self._records.append(record)
            self._by_config[record.config.config_id()] = len(self._records) - 1
            valid_lines.append(raw)
            count += 1
        if self.quarantined:
            if strict:
                self.quarantined, bad = [], self.quarantined
                raise StoreCorruptionError(
                    f"{self.path}: {len(bad)} undecodable line(s) "
                    f"(first at line {bad[0][0]}); run load(strict=False) to quarantine"
                )
            if compact:
                self._quarantine_and_rewrite(valid_lines)
            else:
                self._pending_rewrite = valid_lines
        return count

    @property
    def compaction_pending(self) -> bool:
        """Whether a deferred quarantine rewrite is waiting for :meth:`compact`."""
        return self._pending_rewrite is not None

    def compact(self) -> int:
        """Perform a deferred quarantine rewrite; returns lines quarantined.

        No-op (returns 0) when the last :meth:`load` found no corruption
        or already compacted eagerly.
        """
        if self._pending_rewrite is None:
            return 0
        valid_lines, self._pending_rewrite = self._pending_rewrite, None
        self._quarantine_and_rewrite(valid_lines)
        return len(self.quarantined)

    def _quarantine_and_rewrite(self, valid_lines: list[str]) -> None:
        """Move corrupt lines to the sidecar and rewrite the store atomically.

        Honors the store's ``durability`` knob: under ``"fsync"`` the
        quarantine sidecar and the rewritten store are fsynced (file and
        directory entry) *before* the rename lands, closing the crash
        window between the rewrite and the replacement becoming durable.
        """
        self.close()  # never rewrite under an open append handle
        fsync = self.durability == "fsync"
        _QUARANTINED.inc(len(self.quarantined))
        stamp = _dt.datetime.now(_dt.timezone.utc).isoformat()
        with open(self.quarantine_path, "a", encoding="utf-8") as sidecar:
            for lineno, raw in self.quarantined:
                sidecar.write(f"# {stamp} line {lineno} of {self.path.name}\n{raw}\n")
            if fsync:
                sidecar.flush()
                os.fsync(sidecar.fileno())
        body = "".join(line + "\n" for line in valid_lines)
        atomic_write_text(self.path, body, fsync=fsync)
        for lineno, raw in self.quarantined:
            _LOG.warning(
                "quarantined undecodable store line %d of %s (%d bytes) -> %s",
                lineno, self.path, len(raw), self.quarantine_path,
            )

    # -- run manifest --------------------------------------------------------

    def write_manifest(self, manifest: RunManifest) -> None:
        """Persist the sweep's identity next to the store (atomic)."""
        if manifest.created_at == "":
            manifest = RunManifest(**{
                **manifest.__dict__,
                "created_at": _dt.datetime.now(_dt.timezone.utc).isoformat(),
            })
        write_json(self.manifest_path, manifest.to_dict())

    def read_manifest(self) -> RunManifest | None:
        """The stored manifest, or ``None`` when absent."""
        if self.path is None or not self.manifest_path.exists():
            return None
        return RunManifest.from_dict(read_json(self.manifest_path))

    def verify_or_write_manifest(self, manifest: RunManifest) -> None:
        """Resume gate: verify an existing manifest or write a fresh one.

        Raises :class:`ResumeMismatchError` when the stored manifest's
        fingerprint differs — resuming under different strategy/seed/
        space settings would silently mix incompatible records.
        """
        stored = self.read_manifest()
        if stored is None:
            self.write_manifest(manifest)
            return
        if stored.fingerprint() != manifest.fingerprint():
            diffs = manifest.diff(stored) or ["fingerprint mismatch"]
            raise ResumeMismatchError(
                f"store manifest at {self.manifest_path} does not match this experiment; "
                "refusing to resume. Differences: " + "; ".join(diffs)
            )

    # -- analysis ------------------------------------------------------------

    def best_by_accuracy(self) -> TrialRecord:
        """Highest-accuracy successful trial."""
        ok = self.records(ok_only=True)
        if not ok:
            raise ValueError("store has no successful trials")
        return max(ok, key=lambda r: r.accuracy)

    def analysis_records(self) -> list[dict]:
        """Flat objective records of successful trials (Pareto input)."""
        return [r.as_analysis_record() for r in self.records(ok_only=True)]
