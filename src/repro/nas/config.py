"""Model configurations: one point of the paper's search space.

A :class:`ModelConfig` combines the input-data knobs (channels, batch
size) with the seven architectural knobs of Figure 2.  It is hashable,
JSON-round-trippable, and carries the *canonical key* used to recognize
that 'no pool' configurations with different pool kernel/stride settings
denote the same architecture (the coincidence the paper notes in
Section 3.2).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping

from repro.utils.rng import stable_hash

__all__ = ["ModelConfig", "CHANNEL_CHOICES", "BATCH_CHOICES", "BASELINE_ARCH"]

CHANNEL_CHOICES = (5, 7)
BATCH_CHOICES = (8, 16, 32)

#: Architectural knobs of the stock ResNet-18 baseline.
BASELINE_ARCH = {
    "kernel_size": 7,
    "stride": 2,
    "padding": 3,
    "pool_choice": 1,
    "kernel_size_pool": 3,
    "stride_pool": 2,
    "initial_output_feature": 64,
}


@dataclass(frozen=True)
class ModelConfig:
    """One search-space point (input combination + architecture)."""

    channels: int
    batch: int
    kernel_size: int
    stride: int
    padding: int
    pool_choice: int
    kernel_size_pool: int
    stride_pool: int
    initial_output_feature: int

    def __post_init__(self) -> None:
        if self.channels not in CHANNEL_CHOICES:
            raise ValueError(f"channels must be one of {CHANNEL_CHOICES}, got {self.channels}")
        if self.batch < 1:
            raise ValueError(f"batch must be positive, got {self.batch}")
        if self.pool_choice not in (0, 1):
            raise ValueError(f"pool_choice must be 0 or 1, got {self.pool_choice}")
        for name in ("kernel_size", "stride"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        if self.padding < 0:
            raise ValueError(f"padding must be non-negative, got {self.padding}")
        # Pool geometry only matters when pooling is enabled; canonicalized
        # no-pool configs carry zeros there.
        if self.pool_choice == 1:
            for name in ("kernel_size_pool", "stride_pool"):
                if getattr(self, name) < 1:
                    raise ValueError(f"{name} must be positive when pooling, got {getattr(self, name)}")
        if self.initial_output_feature < 1:
            raise ValueError(f"initial_output_feature must be positive, got {self.initial_output_feature}")

    # -- identity ------------------------------------------------------------------

    def canonical(self) -> "ModelConfig":
        """Collapse pool kernel/stride when pooling is disabled.

        Two 'no pool' configs differing only in the (unused) pool
        parameters build identical networks; canonicalization makes them
        compare equal.
        """
        if self.pool_choice == 0:
            return replace(self, kernel_size_pool=0, stride_pool=0)
        return self

    def architecture_key(self) -> tuple[int, ...]:
        """Hashable identity of the *network* (input combo excluded)."""
        c = self.canonical()
        return (
            c.channels,
            c.kernel_size,
            c.stride,
            c.padding,
            c.pool_choice,
            c.kernel_size_pool,
            c.stride_pool,
            c.initial_output_feature,
        )

    def config_id(self) -> str:
        """Stable short hex id of the full configuration."""
        return f"{stable_hash(self.to_dict(), bits=64):016x}"

    # -- serialization ---------------------------------------------------------------

    def to_dict(self) -> dict[str, int]:
        """Plain-dict form (JSON-safe)."""
        return {k: int(v) for k, v in asdict(self).items()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModelConfig":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        fields = {f: int(data[f]) for f in cls.__dataclass_fields__}
        return cls(**fields)

    @classmethod
    def baseline(cls, channels: int = 5, batch: int = 16) -> "ModelConfig":
        """The stock ResNet-18 benchmark configuration (paper Table 5)."""
        return cls(channels=channels, batch=batch, **BASELINE_ARCH)

    # -- derived geometry ---------------------------------------------------------------

    def stem_downsample(self) -> int:
        """Total spatial downsampling factor of the stem (conv x pool)."""
        factor = self.stride
        if self.pool_choice == 1:
            factor *= self.stride_pool
        return factor

    def is_valid_for(self, input_hw: tuple[int, int] = (100, 100)) -> bool:
        """Whether the config yields positive spatial sizes end to end."""
        from repro.graph.shapes import conv_out_hw, pool_out_hw

        try:
            hw = conv_out_hw(input_hw, self.kernel_size, self.stride, self.padding)
            if self.pool_choice == 1:
                hw = pool_out_hw(hw, self.kernel_size_pool, self.stride_pool)
            # Four stages: strides 1, 2, 2, 2 with 3x3/pad-1 convs.
            for stage_stride in (1, 2, 2, 2):
                hw = conv_out_hw(hw, 3, stage_stride, 1)
        except ValueError:
            return False
        return True
