"""Experiment run telemetry: progress, throughput, ETA.

The paper reports NNI experiment wall-times (9h20m-29h per input
combination); :class:`RunTelemetry` captures the equivalent statistics
for this library's sweeps and renders them live through the Experiment's
progress callback.

Since the :mod:`repro.obs` consolidation, :class:`RunTelemetry` is built
*on top of* the metrics substrate: it implements the
:class:`~repro.obs.ProgressListener` protocol (so it can be passed
directly as ``Experiment(progress=...)`` alongside other listeners) and
mirrors its counters into a private per-run
:class:`~repro.obs.MetricsRegistry` (:attr:`RunTelemetry.registry`),
which makes a finished run exportable through any obs sink —
``prometheus_text(telemetry.registry.snapshot())`` renders the same
numbers :meth:`summary` prints.  The mutable public fields
(``durations``, ``failures``, ``retried_trials``, ...) are unchanged.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.nas.trial import TrialRecord
from repro.obs import MetricsRegistry
from repro.utils.timing import format_duration

__all__ = ["RunTelemetry"]


@dataclass
class RunTelemetry:
    """Collects per-trial durations and derives run-level statistics.

    Use as an Experiment progress callback::

        telemetry = RunTelemetry()
        Experiment(..., progress=telemetry).run(budget)
        print(telemetry.summary())
    """

    started_at: float = field(default_factory=time.perf_counter)
    durations: list[float] = field(default_factory=list)
    failures: int = 0
    total: int = 0
    log_every: int = 0  # 0 disables live printing
    #: Fault-tolerance counters (see :mod:`repro.nas.retry`): trials
    #: that needed >1 attempt, extra attempts summed, trials recovered
    #: by retry (ok after >1 attempt), per-error-kind failure counts,
    #: and device predictors skipped by graceful degradation.
    retried_trials: int = 0
    total_retries: int = 0
    recovered_trials: int = 0
    deadline_exceeded: int = 0
    failures_by_kind: dict = field(default_factory=dict)
    skipped_device_measurements: int = 0
    #: Per-run metrics registry mirroring the counters above; always
    #: enabled, independent of the process-wide obs registry, so a
    #: finished run can be exported through any obs sink.
    registry: MetricsRegistry = field(
        default_factory=lambda: MetricsRegistry(enabled=True), repr=False, compare=False
    )
    _done: int = 0

    def __call__(self, done: int, total: int, record: TrialRecord) -> None:
        """Experiment progress hook."""
        self._done = done
        self.total = total
        self.durations.append(record.duration_s)
        self.registry.histogram("repro_trial_duration_seconds").observe(record.duration_s)
        if record.attempts > 1:
            self.retried_trials += 1
            self.total_retries += record.attempts - 1
            self.registry.counter("repro_trials_retried_total").inc()
            self.registry.counter("repro_trial_retries_total").inc(record.attempts - 1)
            if record.ok:
                self.recovered_trials += 1
                self.registry.counter("repro_trials_recovered_total").inc()
        self.skipped_device_measurements += len(record.skipped_devices)
        if record.skipped_devices:
            self.registry.counter("repro_device_predictions_skipped_total").inc(
                len(record.skipped_devices)
            )
        if not record.ok:
            self.failures += 1
            kind = record.error_kind or "failed"
            self.failures_by_kind[kind] = self.failures_by_kind.get(kind, 0) + 1
            self.registry.counter("repro_trials_total", status="failed").inc()
            self.registry.counter("repro_trials_failed_total", kind=kind).inc()
            if kind == "deadline":
                self.deadline_exceeded += 1
        else:
            self.registry.counter("repro_trials_total", status="ok").inc()
        if self.log_every and done % self.log_every == 0:
            print(f"  [{done}/{total}] {self.eta_line()}")

    # -- ProgressListener protocol -------------------------------------------
    # RunTelemetry predates the listener protocol; the legacy ``__call__``
    # form remains the data path, and these hooks make the class a
    # first-class listener for ``Experiment(progress=...)`` fan-outs.

    def on_trial_start(self, trial_id: int, config: object) -> None:
        """Listener hook (no per-trial state needed at start)."""

    def on_trial_end(self, done: int, total: int, record: TrialRecord) -> None:
        """Listener hook: delegates to the legacy callable form."""
        self(done, total, record)

    def on_run_end(self, result: object) -> None:
        """Listener hook (summary stays pull-based via :meth:`summary`)."""

    @property
    def elapsed_s(self) -> float:
        return time.perf_counter() - self.started_at

    @property
    def mean_trial_s(self) -> float:
        """Mean wall time per completed trial."""
        return sum(self.durations) / len(self.durations) if self.durations else 0.0

    @property
    def trials_per_second(self) -> float:
        return self._done / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def eta_seconds(self) -> float:
        """Estimated remaining time from the observed rate."""
        remaining = max(self.total - self._done, 0)
        rate = self.trials_per_second
        return remaining / rate if rate > 0 else float("inf")

    def eta_line(self) -> str:
        """One-line progress status."""
        eta = self.eta_seconds()
        eta_text = format_duration(eta) if eta != float("inf") else "?"
        return (
            f"{self._done}/{self.total} trials, "
            f"{self.trials_per_second:.1f}/s, eta {eta_text}, "
            f"{self.failures} failed"
        )

    def fault_line(self) -> str:
        """One-line fault-tolerance summary (retries, recoveries, kinds)."""
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.failures_by_kind.items()))
        return (
            f"{self.retried_trials} trials retried ({self.total_retries} extra attempts, "
            f"{self.recovered_trials} recovered), {self.deadline_exceeded} deadline-exceeded, "
            f"{self.skipped_device_measurements} device predictions skipped"
            + (f"; failures by kind: {kinds}" if kinds else "")
        )

    def summary(self) -> str:
        """End-of-run report."""
        slowest = max(self.durations) if self.durations else 0.0
        line = (
            f"completed {self._done}/{self.total} trials in {format_duration(self.elapsed_s)} "
            f"({self.failures} failed); mean trial {format_duration(self.mean_trial_s)}, "
            f"slowest {format_duration(slowest)}"
        )
        if self.retried_trials or self.failures or self.skipped_device_measurements:
            line += "; " + self.fault_line()
        return line
