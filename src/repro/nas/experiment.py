"""The NAS experiment runner (NNI's experiment loop).

For every proposed configuration the runner measures all three paper
objectives:

1. **accuracy** via the configured :class:`~repro.nas.evaluators.AccuracyEvaluator`;
2. **latency** via the four device predictors of :mod:`repro.latency`
   (mean and std across predictors, as the paper aggregates);
3. **memory** via the onnxlite serialized size.

Latency and memory depend only on the architecture, so the expensive part
is computed once per unique ``architecture_key``; a small per-*trial*
multiplicative jitter is then applied to the latency, reproducing the
measurement noise visible in the paper's own Table 4, where the same
architecture appears with 8.23 ms and 8.13 ms in different trials.
Failure injection (paper mode: 11 of 1,728) marks trials failed before
evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable

import numpy as np

import repro.obs as obs
from repro.graph.flops import count_graph_flops
from repro.graph.trace import trace_model
from repro.latency.devices import DEVICE_PROFILES, DeviceProfile, kernel_latency_ms
from repro.latency.kernels import extract_kernels
from repro.nas.config import ModelConfig
from repro.nas.evaluators import AccuracyEvaluator
from repro.nas.failures import FailureInjector
from repro.nas.retry import ErrorKind, PermanentTrialError, RetryPolicy, run_with_retry
from repro.nas.storage import RunManifest, TrialStore
from repro.nas.strategies import SearchStrategy
from repro.nas.trial import TrialRecord, TrialStatus
from repro.nn.resnet import build_model
from repro.onnxlite.export import export_model
from repro.utils.logging import get_logger
from repro.utils.rng import stable_hash

__all__ = ["Experiment", "ExperimentResult", "ArchitectureMetrics", "measure_architecture"]

_LOG = get_logger("nas.experiment")


@dataclass(frozen=True)
class ArchitectureMetrics:
    """Architecture-dependent (accuracy-independent) measurements.

    ``skipped_devices`` names device predictors that raised during
    measurement and were excluded from the latency aggregation
    (graceful degradation: one broken predictor must not lose a trial).
    """

    per_device_ms: dict[str, float]
    latency_ms: float
    lat_std: float
    memory_mb: float
    param_count: int
    flops: int
    skipped_devices: tuple[str, ...] = ()


def measure_architecture(
    config: ModelConfig,
    input_hw: tuple[int, int] = (100, 100),
    profiles: dict[str, DeviceProfile] | None = None,
) -> ArchitectureMetrics:
    """Latency (4 devices), memory, params and FLOPs for one architecture.

    Device predictors degrade gracefully: a predictor that raises is
    skipped (recorded in ``skipped_devices``, warning logged) and the
    latency mean/std aggregate over the survivors — matching
    :func:`~repro.latency.predictors.predict_all_devices` bit for bit
    when nothing fails.  Only when *every* predictor fails does the
    measurement raise (:class:`~repro.nas.retry.PermanentTrialError`).
    """
    model = build_model(config, seed=0)
    graph = trace_model(model, input_hw=input_hw)
    profiles = DEVICE_PROFILES if profiles is None else profiles
    kernels = extract_kernels(graph)
    per_device: dict[str, float] = {}
    skipped: list[str] = []
    errors: list[str] = []
    for name, profile in profiles.items():
        try:
            per_device[name] = float(sum(kernel_latency_ms(k, profile) for k in kernels))
        except (KeyboardInterrupt, SystemExit, MemoryError):
            raise
        except Exception as exc:  # noqa: BLE001 - one device must not lose the trial
            skipped.append(name)
            errors.append(f"{name}: {type(exc).__name__}: {exc}")
            _LOG.warning("device predictor %r failed (%s: %s); aggregating without it",
                         name, type(exc).__name__, exc)
    if not per_device:
        raise PermanentTrialError(
            "all device predictors failed for this architecture: " + "; ".join(errors)
        )
    memory_mb = len(export_model(model, input_hw=input_hw)) / 1e6
    values = list(per_device.values())
    return ArchitectureMetrics(
        per_device_ms=per_device,
        latency_ms=float(np.mean(values)),
        lat_std=float(np.std(values)),
        memory_mb=memory_mb,
        param_count=sum(p.size for p in model.parameters()),
        flops=count_graph_flops(graph),
        skipped_devices=tuple(skipped),
    )


@dataclass
class ExperimentResult:
    """Outcome of an experiment run."""

    store: TrialStore
    launched: int
    succeeded: int
    failed: int
    duration_s: float
    skipped: int = 0  # resumed trials served from the store
    retried: int = 0  # trials that needed more than one attempt
    total_retries: int = 0  # extra attempts summed over all trials
    deadline_exceeded: int = 0  # trials failed by their wall-clock budget

    @property
    def valid_outcomes(self) -> int:
        """Successful trial count (the paper's '1,717 valid outcomes')."""
        return self.succeeded


class Experiment:
    """Runs a search strategy against an accuracy evaluator.

    Parameters
    ----------
    evaluator:
        Accuracy backend (training or surrogate).
    strategy:
        Configuration proposer (grid for the paper's protocol).
    store:
        Trial database; a fresh in-memory store by default.
    failure_injector:
        Deterministic trial-failure model; default injects none.
    input_hw:
        Input patch size used for latency/memory measurement.
    profiles:
        Device profiles (defaults to the calibrated four).
    latency_jitter:
        Relative std of the per-trial latency measurement noise (the
        paper's Table-4 twin rows differ by ~1.2% for one architecture);
        0 disables it.
    jitter_seed:
        Seed of the jitter stream.
    skip_existing:
        Skip configurations already present in ``store`` (resume support:
        load a JSONL store from an interrupted sweep and re-run with the
        same strategy; completed trials are not re-evaluated).  When the
        store is file-backed, resume first verifies the store's run
        manifest (strategy, seeds, search-space hash) and refuses to mix
        records from a different sweep
        (:class:`~repro.nas.storage.ResumeMismatchError`).
    retry_policy:
        Transient-failure retry/deadline policy
        (:class:`~repro.nas.retry.RetryPolicy`); the default retries
        transients up to 3 attempts with seeded backoff and no deadline.
        Unexpected exceptions no longer abort the sweep: they are
        classified by :func:`~repro.nas.retry.classify_error` and
        captured (with traceback) into the trial record — only fatal
        errors (Ctrl-C, ``MemoryError``) propagate.
    progress:
        Optional progress consumer.  Accepts either a
        :class:`~repro.obs.ProgressListener` (full ``on_trial_start`` /
        ``on_trial_end`` / ``on_run_end`` hooks) or a legacy callable
        ``(done, total, record)``; anything accepted by
        :func:`repro.obs.as_listener` works.  An
        :class:`~repro.obs.ObsProgressListener` is always installed
        alongside it, so trial counters flow into the metrics registry
        whenever observability is enabled (and cost nothing otherwise).
    """

    def __init__(
        self,
        evaluator: AccuracyEvaluator,
        strategy: SearchStrategy,
        store: TrialStore | None = None,
        failure_injector: FailureInjector | None = None,
        input_hw: tuple[int, int] = (100, 100),
        profiles: dict[str, DeviceProfile] | None = None,
        latency_jitter: float = 0.006,
        jitter_seed: int = 0,
        skip_existing: bool = False,
        retry_policy: RetryPolicy | None = None,
        progress: "Callable[[int, int, TrialRecord], None] | obs.ProgressListener | None" = None,
    ) -> None:
        if latency_jitter < 0:
            raise ValueError(f"latency_jitter must be non-negative, got {latency_jitter}")
        self.evaluator = evaluator
        self.strategy = strategy
        self.store = store if store is not None else TrialStore()
        self.failure_injector = failure_injector or FailureInjector.none()
        self.input_hw = input_hw
        self.profiles = DEVICE_PROFILES if profiles is None else profiles
        self.latency_jitter = latency_jitter
        self.jitter_seed = jitter_seed
        self.skip_existing = skip_existing
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.progress = progress
        self._arch_cache: dict[tuple[int, ...], ArchitectureMetrics] = {}

    def _jittered(self, metrics: ArchitectureMetrics, config: ModelConfig) -> ArchitectureMetrics:
        """Apply per-trial measurement noise to the latency figures."""
        if self.latency_jitter == 0:
            return metrics
        rng = np.random.default_rng(stable_hash(self.jitter_seed, "lat-jitter", config.to_dict()))
        scale = float(np.clip(1.0 + rng.normal(0.0, self.latency_jitter), 0.97, 1.03))
        return replace(
            metrics,
            per_device_ms={k: v * scale for k, v in metrics.per_device_ms.items()},
            latency_ms=metrics.latency_ms * scale,
            lat_std=metrics.lat_std * scale,
        )

    def _metrics_for(self, config: ModelConfig) -> ArchitectureMetrics:
        key = config.architecture_key()
        if key not in self._arch_cache:
            self._arch_cache[key] = measure_architecture(
                config, input_hw=self.input_hw, profiles=self.profiles
            )
        return self._arch_cache[key]

    def run_trial(self, trial_id: int, config: ModelConfig) -> TrialRecord:
        """Evaluate one configuration into a :class:`TrialRecord`.

        Never raises for trial-level problems: transient errors are
        retried under :attr:`retry_policy` (deterministic seeded
        backoff, optional per-trial wall-clock deadline), permanent and
        unexpected errors are captured — type, message, traceback,
        attempt count — into a failed record.  Only fatal errors
        (Ctrl-C, ``MemoryError``) propagate and stop the sweep.
        """
        with obs.span("trial", trial_id=trial_id, config=config.config_id()):
            return self._run_trial_inner(trial_id, config)

    def _run_trial_inner(self, trial_id: int, config: ModelConfig) -> TrialRecord:
        started = time.perf_counter()
        if self.failure_injector.fails(trial_id):
            return TrialRecord(
                trial_id=trial_id,
                config=config,
                status=TrialStatus.FAILED,
                error="injected trial failure (paper reports 1,717/1,728 valid outcomes)",
                error_kind="injected",
                duration_s=time.perf_counter() - started,
            )
        on_attempt = getattr(self.failure_injector, "on_attempt", None)

        def _attempt(attempt: int) -> tuple[ArchitectureMetrics, object]:
            if on_attempt is not None:  # chaos harness hook (repro.faults)
                on_attempt(trial_id, attempt)
            metrics = self._jittered(self._metrics_for(config), config)
            result = self.evaluator.evaluate(config)
            return metrics, result

        outcome = run_with_retry(
            _attempt, self.retry_policy, key=("trial", trial_id), logger=_LOG
        )
        if not outcome.ok:
            status = TrialStatus.FAILED
            return TrialRecord(
                trial_id=trial_id,
                config=config,
                status=status,
                error=outcome.error,
                error_kind=outcome.error_kind,
                traceback="" if outcome.error_kind == ErrorKind.DEADLINE.value
                else outcome.traceback,
                attempts=outcome.attempts,
                duration_s=time.perf_counter() - started,
            )
        metrics, result = outcome.value
        return TrialRecord(
            trial_id=trial_id,
            config=config,
            status=TrialStatus.OK,
            accuracy=result.accuracy,
            fold_accuracies=result.fold_accuracies,
            latency_ms=metrics.latency_ms,
            lat_std=metrics.lat_std,
            per_device_ms=metrics.per_device_ms,
            memory_mb=metrics.memory_mb,
            param_count=metrics.param_count,
            flops=metrics.flops,
            duration_s=time.perf_counter() - started,
            attempts=outcome.attempts,
            skipped_devices=metrics.skipped_devices,
        )

    def propose_trials(self, budget: int) -> list[tuple[int, "ModelConfig"]]:
        """The ``(trial_id, config)`` work list for a ``budget``-trial sweep.

        Factored out of :meth:`run` so distributed drivers
        (:mod:`repro.nas.fabric`) can enumerate the exact same trials
        the serial loop would execute — trial ids are the proposal
        order, which is deterministic for a given strategy.
        """
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        return list(enumerate(self.strategy.propose(budget)))

    def with_evaluator(self, evaluator: AccuracyEvaluator) -> "Experiment":
        """A sibling experiment differing only in its accuracy evaluator.

        Used by fabric worker nodes to wrap the shared evaluator (e.g.
        routing it through the node's process pool) while keeping every
        other knob — jitter, profiles, retry policy — identical, so the
        produced records stay bitwise-equal to the serial runner's.  The
        architecture-metrics cache is *shared* with the parent: latency
        and memory are accuracy-independent, so all nodes may reuse one
        measurement per unique architecture.
        """
        sibling = Experiment(
            evaluator=evaluator,
            strategy=self.strategy,
            store=TrialStore(),
            failure_injector=self.failure_injector,
            input_hw=self.input_hw,
            profiles=self.profiles,
            latency_jitter=self.latency_jitter,
            jitter_seed=self.jitter_seed,
            skip_existing=False,
            retry_policy=self.retry_policy,
        )
        sibling._arch_cache = self._arch_cache
        return sibling

    def run_manifest(self) -> RunManifest:
        """The identity manifest of this experiment's sweep.

        Captures everything that must match for a resumed run to
        reproduce the skipped trials: strategy class, search-space hash
        (when the strategy exposes ``.space``), evaluator class and
        seed, jitter settings, injector schedule and input size.
        """
        space = getattr(self.strategy, "space", None)
        seeds = {"jitter_seed": int(self.jitter_seed)}
        evaluator_seed = getattr(self.evaluator, "seed", None)
        if isinstance(evaluator_seed, (int, np.integer)):
            seeds["evaluator_seed"] = int(evaluator_seed)
        injector = self.failure_injector
        injector_desc = getattr(injector, "describe", None)
        if callable(injector_desc):
            injector_text = str(injector_desc())
        else:
            injector_text = (
                f"{type(injector).__name__}(total={getattr(injector, 'total', '?')}, "
                f"failed={sorted(getattr(injector, 'failed_indices', ()))})"
            )
        return RunManifest(
            strategy=type(self.strategy).__name__,
            space_hash=stable_hash("search-space", repr(space)) if space is not None else 0,
            seeds=seeds,
            input_hw=tuple(self.input_hw),
            latency_jitter=self.latency_jitter,
            injector=injector_text,
            evaluator=type(self.evaluator).__name__,
        )

    def run(self, budget: int) -> ExperimentResult:
        """Propose-and-evaluate up to ``budget`` trials."""
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        with obs.span("experiment.run", budget=budget,
                      strategy=type(self.strategy).__name__):
            return self._run_inner(budget)

    def _run_inner(self, budget: int) -> ExperimentResult:
        # Normalized at run time (not __init__) so callers may still
        # assign ``experiment.progress`` directly between runs.
        listener = obs.ProgressFanout(
            [obs.as_listener(self.progress), obs.ObsProgressListener()]
        )
        if self.store.path is not None:
            # Resume gate: refuse to skip trials recorded under different
            # sweep settings; first runs write the manifest for later
            # resumes.  (Verification is strict only when resuming.)
            manifest = self.run_manifest()
            if self.skip_existing:
                self.store.verify_or_write_manifest(manifest)
            elif self.store.read_manifest() is None:
                self.store.write_manifest(manifest)
        started = time.perf_counter()
        launched = succeeded = failed = 0
        skipped = retried = total_retries = deadline_exceeded = 0
        proposals: Iterable[ModelConfig] = self.strategy.propose(budget)
        for trial_id, config in enumerate(proposals):
            if self.skip_existing:
                existing = self.store.find(config)
                if existing is not None:
                    skipped += 1
                    if existing.ok:
                        self.strategy.observe_record(config, existing)
                    continue
            listener.on_trial_start(trial_id, config)
            record = self.run_trial(trial_id, config)
            self.store.add(record)
            launched += 1
            if record.attempts > 1:
                retried += 1
                total_retries += record.attempts - 1
            if record.error_kind == ErrorKind.DEADLINE.value:
                deadline_exceeded += 1
            if record.ok:
                succeeded += 1
                self.strategy.observe_record(config, record)
            else:
                failed += 1
                _LOG.debug("trial %d failed (%s after %d attempts): %s",
                           trial_id, record.error_kind or "failed", record.attempts,
                           record.error)
            listener.on_trial_end(launched, budget, record)
        result = ExperimentResult(
            store=self.store,
            launched=launched,
            succeeded=succeeded,
            failed=failed,
            duration_s=time.perf_counter() - started,
            skipped=skipped,
            retried=retried,
            total_retries=total_retries,
            deadline_exceeded=deadline_exceeded,
        )
        listener.on_run_end(result)
        return result
