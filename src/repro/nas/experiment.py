"""The NAS experiment runner (NNI's experiment loop).

For every proposed configuration the runner measures all three paper
objectives:

1. **accuracy** via the configured :class:`~repro.nas.evaluators.AccuracyEvaluator`;
2. **latency** via the four device predictors of :mod:`repro.latency`
   (mean and std across predictors, as the paper aggregates);
3. **memory** via the onnxlite serialized size.

Latency and memory depend only on the architecture, so the expensive part
is computed once per unique ``architecture_key``; a small per-*trial*
multiplicative jitter is then applied to the latency, reproducing the
measurement noise visible in the paper's own Table 4, where the same
architecture appears with 8.23 ms and 8.13 ms in different trials.
Failure injection (paper mode: 11 of 1,728) marks trials failed before
evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.graph.flops import count_graph_flops
from repro.graph.trace import trace_model
from repro.latency.devices import DEVICE_PROFILES, DeviceProfile
from repro.latency.predictors import predict_all_devices
from repro.nas.config import ModelConfig
from repro.nas.evaluators import AccuracyEvaluator
from repro.nas.failures import FailureInjector
from repro.nas.storage import TrialStore
from repro.nas.strategies import SearchStrategy
from repro.nas.trial import TrialRecord, TrialStatus
from repro.nn.resnet import build_model
from repro.onnxlite.export import export_model
from repro.utils.logging import get_logger

__all__ = ["Experiment", "ExperimentResult", "ArchitectureMetrics", "measure_architecture"]

_LOG = get_logger("nas.experiment")


@dataclass(frozen=True)
class ArchitectureMetrics:
    """Architecture-dependent (accuracy-independent) measurements."""

    per_device_ms: dict[str, float]
    latency_ms: float
    lat_std: float
    memory_mb: float
    param_count: int
    flops: int


def measure_architecture(
    config: ModelConfig,
    input_hw: tuple[int, int] = (100, 100),
    profiles: dict[str, DeviceProfile] | None = None,
) -> ArchitectureMetrics:
    """Latency (4 devices), memory, params and FLOPs for one architecture."""
    model = build_model(config, seed=0)
    graph = trace_model(model, input_hw=input_hw)
    summary = predict_all_devices(graph, profiles=profiles)
    memory_mb = len(export_model(model, input_hw=input_hw)) / 1e6
    return ArchitectureMetrics(
        per_device_ms=summary.per_device_ms,
        latency_ms=summary.mean_ms,
        lat_std=summary.std_ms,
        memory_mb=memory_mb,
        param_count=sum(p.size for p in model.parameters()),
        flops=count_graph_flops(graph),
    )


@dataclass
class ExperimentResult:
    """Outcome of an experiment run."""

    store: TrialStore
    launched: int
    succeeded: int
    failed: int
    duration_s: float
    skipped: int = 0  # resumed trials served from the store

    @property
    def valid_outcomes(self) -> int:
        """Successful trial count (the paper's '1,717 valid outcomes')."""
        return self.succeeded


class Experiment:
    """Runs a search strategy against an accuracy evaluator.

    Parameters
    ----------
    evaluator:
        Accuracy backend (training or surrogate).
    strategy:
        Configuration proposer (grid for the paper's protocol).
    store:
        Trial database; a fresh in-memory store by default.
    failure_injector:
        Deterministic trial-failure model; default injects none.
    input_hw:
        Input patch size used for latency/memory measurement.
    profiles:
        Device profiles (defaults to the calibrated four).
    latency_jitter:
        Relative std of the per-trial latency measurement noise (the
        paper's Table-4 twin rows differ by ~1.2% for one architecture);
        0 disables it.
    jitter_seed:
        Seed of the jitter stream.
    skip_existing:
        Skip configurations already present in ``store`` (resume support:
        load a JSONL store from an interrupted sweep and re-run with the
        same strategy; completed trials are not re-evaluated).
    progress:
        Optional callback ``(done, total, record)`` for UIs/logging.
    """

    def __init__(
        self,
        evaluator: AccuracyEvaluator,
        strategy: SearchStrategy,
        store: TrialStore | None = None,
        failure_injector: FailureInjector | None = None,
        input_hw: tuple[int, int] = (100, 100),
        profiles: dict[str, DeviceProfile] | None = None,
        latency_jitter: float = 0.006,
        jitter_seed: int = 0,
        skip_existing: bool = False,
        progress: Callable[[int, int, TrialRecord], None] | None = None,
    ) -> None:
        if latency_jitter < 0:
            raise ValueError(f"latency_jitter must be non-negative, got {latency_jitter}")
        self.evaluator = evaluator
        self.strategy = strategy
        self.store = store if store is not None else TrialStore()
        self.failure_injector = failure_injector or FailureInjector.none()
        self.input_hw = input_hw
        self.profiles = DEVICE_PROFILES if profiles is None else profiles
        self.latency_jitter = latency_jitter
        self.jitter_seed = jitter_seed
        self.skip_existing = skip_existing
        self.progress = progress
        self._arch_cache: dict[tuple[int, ...], ArchitectureMetrics] = {}

    def _jittered(self, metrics: ArchitectureMetrics, config: ModelConfig) -> ArchitectureMetrics:
        """Apply per-trial measurement noise to the latency figures."""
        if self.latency_jitter == 0:
            return metrics
        import numpy as np

        from repro.utils.rng import stable_hash

        rng = np.random.default_rng(stable_hash(self.jitter_seed, "lat-jitter", config.to_dict()))
        scale = float(np.clip(1.0 + rng.normal(0.0, self.latency_jitter), 0.97, 1.03))
        return ArchitectureMetrics(
            per_device_ms={k: v * scale for k, v in metrics.per_device_ms.items()},
            latency_ms=metrics.latency_ms * scale,
            lat_std=metrics.lat_std * scale,
            memory_mb=metrics.memory_mb,
            param_count=metrics.param_count,
            flops=metrics.flops,
        )

    def _metrics_for(self, config: ModelConfig) -> ArchitectureMetrics:
        key = config.architecture_key()
        if key not in self._arch_cache:
            self._arch_cache[key] = measure_architecture(
                config, input_hw=self.input_hw, profiles=self.profiles
            )
        return self._arch_cache[key]

    def run_trial(self, trial_id: int, config: ModelConfig) -> TrialRecord:
        """Evaluate one configuration into a :class:`TrialRecord`."""
        started = time.perf_counter()
        if self.failure_injector.fails(trial_id):
            return TrialRecord(
                trial_id=trial_id,
                config=config,
                status=TrialStatus.FAILED,
                error="injected trial failure (paper reports 1,717/1,728 valid outcomes)",
                duration_s=time.perf_counter() - started,
            )
        try:
            metrics = self._jittered(self._metrics_for(config), config)
            result = self.evaluator.evaluate(config)
        except (ValueError, KeyError) as exc:
            return TrialRecord(
                trial_id=trial_id,
                config=config,
                status=TrialStatus.FAILED,
                error=f"{type(exc).__name__}: {exc}",
                duration_s=time.perf_counter() - started,
            )
        return TrialRecord(
            trial_id=trial_id,
            config=config,
            status=TrialStatus.OK,
            accuracy=result.accuracy,
            fold_accuracies=result.fold_accuracies,
            latency_ms=metrics.latency_ms,
            lat_std=metrics.lat_std,
            per_device_ms=metrics.per_device_ms,
            memory_mb=metrics.memory_mb,
            param_count=metrics.param_count,
            flops=metrics.flops,
            duration_s=time.perf_counter() - started,
        )

    def run(self, budget: int) -> ExperimentResult:
        """Propose-and-evaluate up to ``budget`` trials."""
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        started = time.perf_counter()
        launched = succeeded = failed = 0
        skipped = 0
        proposals: Iterable[ModelConfig] = self.strategy.propose(budget)
        for trial_id, config in enumerate(proposals):
            if self.skip_existing:
                existing = self.store.find(config)
                if existing is not None:
                    skipped += 1
                    if existing.ok:
                        self.strategy.observe_record(config, existing)
                    continue
            record = self.run_trial(trial_id, config)
            self.store.add(record)
            launched += 1
            if record.ok:
                succeeded += 1
                self.strategy.observe_record(config, record)
            else:
                failed += 1
                _LOG.debug("trial %d failed: %s", trial_id, record.error)
            if self.progress is not None:
                self.progress(launched, budget, record)
        return ExperimentResult(
            store=self.store,
            launched=launched,
            succeeded=succeeded,
            failed=failed,
            duration_s=time.perf_counter() - started,
            skipped=skipped,
        )
