"""Trial error taxonomy, per-trial deadlines and the seeded retry policy.

Long device-aware NAS sweeps (the paper loses 11 of 1,728 launched trials
to run-time failures; DPP-Net-scale searches run thousands) must treat a
trial failure as data, not as a reason to abort the run.  This module is
the policy layer the :class:`~repro.nas.experiment.Experiment` runner uses
to decide *what kind* of failure it just saw and *what to do about it*:

- :class:`ErrorKind` — the taxonomy.  **Transient** errors (flaky IO,
  broken worker pools, injected chaos) are retried with deterministic
  seeded backoff; **permanent** errors (bad configuration, numerical
  blow-ups) fail the trial immediately but keep the sweep alive;
  **fatal** errors (``KeyboardInterrupt``, ``MemoryError``) propagate and
  stop the sweep — retrying them would be dishonest.  **Deadline** marks
  trials that exceeded their wall-clock budget.
- :class:`RetryPolicy` — attempt counts, seeded exponential backoff
  (same seed + trial key -> identical delay schedule in any process) and
  the per-trial deadline.
- :class:`Deadline` — a cooperative wall-clock budget.  Instrumented
  code (the fault harness's hang injection, long-running loops) calls
  :func:`current_deadline` and raises :class:`TrialDeadlineExceeded`
  when the budget is spent; plain Python cannot preempt a compute-bound
  trial, so enforcement is cooperative by design (documented in
  DEVELOPMENT.md "Fault tolerance").
- :func:`run_with_retry` — the attempt loop itself, returning a
  :class:`RetryOutcome` that records every attempt's error so the trial
  record can carry the full story.
"""

from __future__ import annotations

import enum
import threading
import time
import traceback as _traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

import numpy as np

import repro.obs as obs
from repro.utils.rng import stable_hash

__all__ = [
    "ErrorKind",
    "TransientTrialError",
    "WorkerLostError",
    "NodeKilledError",
    "PermanentTrialError",
    "TrialDeadlineExceeded",
    "FATAL_ERRORS",
    "TRANSIENT_ERRORS",
    "classify_error",
    "Deadline",
    "Heartbeat",
    "current_deadline",
    "deadline_scope",
    "RetryPolicy",
    "RetryOutcome",
    "run_with_retry",
]


class ErrorKind(str, enum.Enum):
    """What a trial failure means for the sweep."""

    TRANSIENT = "transient"  # retry with backoff; environment flake
    PERMANENT = "permanent"  # fail the trial, keep the sweep
    FATAL = "fatal"  # propagate; the sweep itself must stop
    DEADLINE = "deadline"  # per-trial wall-clock budget exceeded


class TransientTrialError(RuntimeError):
    """Base class for errors worth retrying (environment flakes, chaos)."""


class WorkerLostError(TransientTrialError):
    """A sweep worker died or missed its heartbeat while holding work.

    Transient by taxonomy: the *work* is presumed fine, the *worker* is
    gone, so the fabric coordinator re-leases the in-flight trials to a
    surviving node (see :mod:`repro.nas.fabric`).  A trial that keeps
    losing its workers is eventually quarantined as poison by the lease
    table's ``max_leases`` cap rather than retried forever.
    """


class NodeKilledError(SystemExit):
    """A sweep node is dying right now (injected kill or fatal worker loss).

    Deliberately a ``SystemExit`` subclass: it is **fatal to the node**
    — :func:`run_with_retry` must propagate it instead of retrying, and
    the node loop unwinds without committing — but **transient to the
    sweep**: the node stops heartbeating, its lease expires, and the
    coordinator re-leases the in-flight trials elsewhere.
    """


class PermanentTrialError(RuntimeError):
    """Base class for errors that will recur on retry (bad trial)."""


class TrialDeadlineExceeded(PermanentTrialError):
    """The trial's wall-clock budget ran out (never retried)."""


#: Errors that must stop the whole sweep.  ``MemoryError`` is fatal
#: because a retry under memory pressure poisons later trials too.
FATAL_ERRORS: tuple[type[BaseException], ...] = (
    KeyboardInterrupt,
    SystemExit,
    GeneratorExit,
    MemoryError,
)

#: Errors presumed transient: IO/worker flakes and explicit markers.
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (
    TransientTrialError,
    TimeoutError,
    ConnectionError,
    InterruptedError,
    BrokenPipeError,
    EOFError,  # a killed pool worker surfaces as EOF on its pipe
)


def classify_error(exc: BaseException) -> ErrorKind:
    """Map an exception to its :class:`ErrorKind`.

    Explicit markers win: anything deriving from
    :class:`TrialDeadlineExceeded` is ``DEADLINE``, then
    :class:`TransientTrialError`/:data:`TRANSIENT_ERRORS` are
    ``TRANSIENT``, :data:`FATAL_ERRORS` are ``FATAL``, and everything
    else — including :class:`PermanentTrialError`, ``FloatingPointError``
    and pickling errors — is ``PERMANENT`` (recorded, never re-raised).
    """
    try:
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - stdlib always has it
        BrokenProcessPool = ()  # type: ignore[assignment]
    if isinstance(exc, TrialDeadlineExceeded):
        return ErrorKind.DEADLINE
    if isinstance(exc, TRANSIENT_ERRORS) or (
        BrokenProcessPool and isinstance(exc, BrokenProcessPool)
    ):
        return ErrorKind.TRANSIENT
    if isinstance(exc, FATAL_ERRORS):
        return ErrorKind.FATAL
    return ErrorKind.PERMANENT


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


class Deadline:
    """A cooperative wall-clock budget for one trial.

    ``limit_s=None`` means unlimited.  Instrumented code calls
    :meth:`check` at safe points; the fault harness's latency/hang
    injections honor the active deadline via :func:`current_deadline`.
    """

    def __init__(self, limit_s: float | None, clock: Callable[[], float] = time.monotonic) -> None:
        if limit_s is not None and limit_s <= 0:
            raise ValueError(f"deadline limit_s must be positive or None, got {limit_s}")
        self.limit_s = limit_s
        self._clock = clock
        self._started = clock()

    def elapsed(self) -> float:
        """Seconds since the deadline started."""
        return self._clock() - self._started

    def remaining(self) -> float:
        """Seconds left (``inf`` when unlimited; clamped at 0)."""
        if self.limit_s is None:
            return float("inf")
        return max(self.limit_s - self.elapsed(), 0.0)

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.limit_s is not None and self.elapsed() >= self.limit_s

    def check(self, context: str = "") -> None:
        """Raise :class:`TrialDeadlineExceeded` if the budget is spent."""
        if self.expired:
            where = f" during {context}" if context else ""
            raise TrialDeadlineExceeded(
                f"trial exceeded its {self.limit_s:.3g}s deadline{where} "
                f"(elapsed {self.elapsed():.3g}s)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(limit_s={self.limit_s}, elapsed={self.elapsed():.3g})"


class Heartbeat:
    """Monotonic liveness tracking for one worker/lease.

    Deliberately built on ``time.monotonic()`` (like :class:`Deadline`):
    lease expiry and heartbeat age must never be computed from the wall
    clock, where an NTP step or daylight-saving jump would spuriously
    expire every outstanding lease (or keep a dead worker alive).  The
    clock is injectable for tests only.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._last = clock()

    def beat(self) -> None:
        """Record liveness now."""
        self._last = self._clock()

    def age_s(self) -> float:
        """Seconds since the last beat (>= 0 by monotonicity)."""
        return self._clock() - self._last

    def missed(self, ttl_s: float) -> bool:
        """Whether the last beat is older than ``ttl_s``."""
        return self.age_s() > ttl_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Heartbeat(age_s={self.age_s():.3g})"


_DEADLINE_STACK = threading.local()


def current_deadline() -> Deadline | None:
    """The innermost active :class:`Deadline`, if any (thread-local)."""
    stack = getattr(_DEADLINE_STACK, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def deadline_scope(deadline: Deadline | None) -> Iterator[Deadline | None]:
    """Make ``deadline`` visible to instrumented code via :func:`current_deadline`."""
    if deadline is None:
        yield None
        return
    stack = getattr(_DEADLINE_STACK, "stack", None)
    if stack is None:
        stack = _DEADLINE_STACK.stack = []
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How transient trial failures are retried.

    Parameters
    ----------
    max_attempts:
        Total attempts per trial (1 disables retries).
    base_delay_s / backoff:
        Exponential backoff: attempt ``k`` (1-based) sleeps
        ``base_delay_s * backoff**(k-1)`` before retrying.
    jitter:
        Relative +-jitter on each delay, drawn from a stream seeded by
        ``(seed, key, attempt)`` — the same trial retries with the same
        delays in every process and on every resume.
    deadline_s:
        Per-trial wall-clock budget (``None`` = unlimited).  No retry
        starts after the deadline, and cooperative checks inside the
        attempt raise :class:`TrialDeadlineExceeded`.
    seed:
        Root seed of the jitter stream.
    sleep:
        Injectable sleep (tests pass a recorder to avoid real waiting).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    backoff: float = 2.0
    jitter: float = 0.1
    deadline_s: float | None = None
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0:
            raise ValueError(f"base_delay_s must be non-negative, got {self.base_delay_s}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive or None, got {self.deadline_s}")

    @classmethod
    def none(cls, deadline_s: float | None = None) -> "RetryPolicy":
        """A policy that never retries (still supports deadlines)."""
        return cls(max_attempts=1, base_delay_s=0.0, deadline_s=deadline_s)

    def delay_for(self, key: object, attempt: int) -> float:
        """Deterministic backoff delay after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = self.base_delay_s * self.backoff ** (attempt - 1)
        if base == 0.0:
            return 0.0
        if self.jitter == 0.0:
            return base
        rng = np.random.default_rng(stable_hash(self.seed, "retry-jitter", key, attempt))
        return float(base * (1.0 + self.jitter * rng.uniform(-1.0, 1.0)))

    def new_deadline(self) -> Deadline | None:
        """A fresh per-trial :class:`Deadline` (or ``None`` if unlimited)."""
        return Deadline(self.deadline_s) if self.deadline_s is not None else None


@dataclass
class RetryOutcome:
    """Everything one retried call produced."""

    ok: bool
    value: Any = None
    attempts: int = 1
    error: str = ""  # last error, "Type: message" form
    error_kind: str = ""  # ErrorKind value of the last error
    traceback: str = ""  # full traceback of the last error
    attempt_errors: list[str] = field(default_factory=list)  # one per failed attempt


def _format_error(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


# Module-level instrument handles: cached once, no-ops while obs is disabled.
_ATTEMPTS = obs.counter("repro_trial_attempts_total")
_RETRIES = obs.counter("repro_trial_retries_total")
_DEADLINE_HITS = obs.counter("repro_trial_deadline_hits_total")


def run_with_retry(
    fn: Callable[[int], Any],
    policy: RetryPolicy,
    key: object = "",
    logger: Any = None,
) -> RetryOutcome:
    """Call ``fn(attempt)`` under ``policy``; never raises non-fatal errors.

    - transient errors retry (seeded backoff) while attempts and the
      deadline allow, then fail the outcome as ``transient``;
    - permanent/unexpected errors fail the outcome immediately, with the
      traceback captured;
    - deadline expiry fails the outcome as ``deadline``;
    - fatal errors (:data:`FATAL_ERRORS`) propagate to the caller.

    The per-trial deadline is installed via :func:`deadline_scope` so
    instrumented code inside ``fn`` can honor it cooperatively.
    """
    deadline = policy.new_deadline()
    outcome = RetryOutcome(ok=False)
    with deadline_scope(deadline):
        for attempt in range(1, policy.max_attempts + 1):
            outcome.attempts = attempt
            _ATTEMPTS.inc()
            try:
                if deadline is not None:
                    deadline.check("attempt start")
                outcome.value = fn(attempt)
                outcome.ok = True
                outcome.error = outcome.error_kind = outcome.traceback = ""
                return outcome
            except FATAL_ERRORS:
                raise
            except BaseException as exc:  # noqa: BLE001 - taxonomy decides
                kind = classify_error(exc)
                if kind is ErrorKind.FATAL:  # pragma: no cover - covered above
                    raise
                outcome.error = _format_error(exc)
                outcome.error_kind = kind.value
                outcome.traceback = _traceback.format_exc()
                outcome.attempt_errors.append(outcome.error)
                if kind is ErrorKind.DEADLINE:
                    _DEADLINE_HITS.inc()
                if logger is not None:
                    logger.debug("attempt %d for %r failed (%s): %s", attempt, key, kind.value, exc)
                if kind is not ErrorKind.TRANSIENT or attempt >= policy.max_attempts:
                    return outcome
                delay = policy.delay_for(key, attempt)
                if deadline is not None and deadline.remaining() <= delay:
                    # Retrying past the deadline would be pointless.
                    outcome.error_kind = ErrorKind.DEADLINE.value
                    outcome.error = (
                        f"TrialDeadlineExceeded: no budget left to retry after {outcome.error}"
                    )
                    _DEADLINE_HITS.inc()
                    return outcome
                _RETRIES.inc()
                if delay > 0:
                    policy.sleep(delay)
    return outcome
