"""The Figure-2 search space: choices, enumeration, cardinality.

The paper's space per input combination:

====================== ==================== ========
knob                   choices              count
====================== ==================== ========
kernel_size            3, 7                 2
stride                 1, 2                 2
padding                1, 2, 3              3
pool_choice            no pool / pool       2
kernel_size_pool       2, 3                 2
stride_pool            1, 2                 2
initial_output_feature 32, 48, 64           3
====================== ==================== ========

Product = 288 configurations per input combination; with 2 channel counts
and 3 batch sizes the full grid launches 6 x 288 = 1,728 trials.  The
'no pool' half of the grid collapses 4:1 onto unique architectures
(Section 3.2's "certain configurations may coincide"), which
:meth:`SearchSpace.unique_architectures` accounts for.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.nas.config import BATCH_CHOICES, CHANNEL_CHOICES, ModelConfig
from repro.utils.rng import rng_from_seed

__all__ = ["SearchSpace", "DEFAULT_SPACE", "enumerate_input_combinations"]


def enumerate_input_combinations(
    channels: Sequence[int] = CHANNEL_CHOICES,
    batches: Sequence[int] = BATCH_CHOICES,
) -> list[tuple[int, int]]:
    """All (channels, batch) input combinations — the paper's six variants."""
    return [(c, b) for c in channels for b in batches]


@dataclass(frozen=True)
class SearchSpace:
    """A discrete architectural search space over :class:`ModelConfig`.

    The defaults reproduce Figure 2 exactly; benches for the Discussion's
    pruning ablation construct restricted spaces (e.g. ``padding=(1,)``).
    """

    kernel_size: tuple[int, ...] = (3, 7)
    stride: tuple[int, ...] = (1, 2)
    padding: tuple[int, ...] = (1, 2, 3)
    pool_choice: tuple[int, ...] = (0, 1)
    kernel_size_pool: tuple[int, ...] = (2, 3)
    stride_pool: tuple[int, ...] = (1, 2)
    initial_output_feature: tuple[int, ...] = (32, 48, 64)
    channels: tuple[int, ...] = CHANNEL_CHOICES
    batches: tuple[int, ...] = BATCH_CHOICES

    _ARCH_FIELDS = (
        "kernel_size",
        "stride",
        "padding",
        "pool_choice",
        "kernel_size_pool",
        "stride_pool",
        "initial_output_feature",
    )

    def __post_init__(self) -> None:
        for name in self._ARCH_FIELDS + ("channels", "batches"):
            if not getattr(self, name):
                raise ValueError(f"search-space dimension {name!r} is empty")

    # -- cardinality -------------------------------------------------------------

    def architectures_per_combination(self) -> int:
        """Raw grid size per input combination (paper: 288)."""
        count = 1
        for name in self._ARCH_FIELDS:
            count *= len(getattr(self, name))
        return count

    def total_configurations(self) -> int:
        """Raw grid size over all input combinations (paper: 1,728)."""
        return self.architectures_per_combination() * len(self.channels) * len(self.batches)

    def unique_architectures_per_combination(self) -> int:
        """Distinct networks per combination after no-pool collapsing."""
        base = 1
        for name in ("kernel_size", "stride", "padding", "initial_output_feature"):
            base *= len(getattr(self, name))
        pool_variants = 0
        if 1 in self.pool_choice:
            pool_variants += len(self.kernel_size_pool) * len(self.stride_pool)
        if 0 in self.pool_choice:
            pool_variants += 1
        return base * pool_variants

    # -- enumeration ----------------------------------------------------------------

    def iter_architectures(self, channels: int, batch: int) -> Iterator[ModelConfig]:
        """Grid order enumeration for one input combination."""
        for values in itertools.product(*(getattr(self, f) for f in self._ARCH_FIELDS)):
            yield ModelConfig(channels=channels, batch=batch, **dict(zip(self._ARCH_FIELDS, values)))

    def iter_all(self) -> Iterator[ModelConfig]:
        """Grid enumeration over every input combination (1,728 configs)."""
        for channels, batch in enumerate_input_combinations(self.channels, self.batches):
            yield from self.iter_architectures(channels, batch)

    def configs(self) -> list[ModelConfig]:
        """The full grid as a list."""
        return list(self.iter_all())

    def sample(self, rng, count: int = 1) -> list[ModelConfig]:
        """Uniform random configurations (with replacement)."""
        generator = rng_from_seed(rng)

        def pick(options):
            return options[int(generator.integers(0, len(options)))]

        out = []
        for _ in range(count):
            out.append(
                ModelConfig(
                    channels=pick(self.channels),
                    batch=pick(self.batches),
                    **{f: pick(getattr(self, f)) for f in self._ARCH_FIELDS},
                )
            )
        return out

    def neighbors(self, config: ModelConfig, rng) -> ModelConfig:
        """Mutate one knob uniformly (used by regularized evolution)."""
        generator = rng_from_seed(rng)
        mutable = list(self._ARCH_FIELDS) + ["channels", "batch"]
        field_name = mutable[int(generator.integers(0, len(mutable)))]
        options = self.batches if field_name == "batch" else getattr(self, field_name if field_name != "channels" else "channels")
        current = getattr(config, field_name)
        alternatives = [v for v in options if v != current]
        if not alternatives:
            return config
        new_value = alternatives[int(generator.integers(0, len(alternatives)))]
        from dataclasses import replace

        return replace(config, **{field_name: new_value})

    def contains(self, config: ModelConfig) -> bool:
        """Whether a configuration lies on this grid."""
        return (
            config.channels in self.channels
            and config.batch in self.batches
            and all(getattr(config, f) in getattr(self, f) for f in self._ARCH_FIELDS)
        )


#: The paper's exact search space.
DEFAULT_SPACE = SearchSpace()
