"""Multi-fidelity evaluation and successive halving (ASHA-style).

The paper's Discussion flags trial cost as the bottleneck (9h20m-29h per
input combination).  The standard remedy is multi-fidelity NAS: score
every candidate cheaply at a low training budget, promote only the best
fraction to higher budgets.  This module provides:

- :class:`FidelitySurrogate` — a budget-aware accuracy oracle.  At
  ``budget`` epochs it reports the surrogate's full-fidelity accuracy
  minus an under-training bias ``gap * exp(-budget / tau)`` plus
  evaluation noise that shrinks as ``1/sqrt(budget)`` — the empirical
  behaviour of early-stopped CNN training curves.
- :class:`FidelityTrainer` — the honest counterpart: really trains for
  ``budget`` epochs via :func:`repro.nas.crossval.cross_validate_model`.
- :func:`successive_halving` — one synchronous SHA bracket.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import DrainageCrossingDataset
from repro.nas.config import ModelConfig
from repro.nas.crossval import TrainSettings, cross_validate_model
from repro.nas.surrogate import SurrogateEvaluator
from repro.utils.rng import stable_hash

__all__ = ["FidelityEvaluator", "FidelitySurrogate", "FidelityTrainer", "successive_halving", "HalvingResult"]


class FidelityEvaluator:
    """Interface: accuracy at a given training budget (epochs)."""

    def evaluate_at(self, config: ModelConfig, budget: int) -> float:
        """Accuracy (%) when trained for ``budget`` epochs."""
        raise NotImplementedError


class FidelitySurrogate(FidelityEvaluator):
    """Budget-aware wrapper over the calibrated accuracy surrogate.

    Parameters
    ----------
    base:
        Full-fidelity surrogate (defaults to paper calibration).
    gap:
        Accuracy (%) lost at budget ~0 relative to full fidelity.
    tau:
        Epoch scale of the training curve; at ``budget = tau`` the model
        has closed ~63% of the gap.
    noise_at_one_epoch:
        Evaluation noise std at budget 1; decays as ``1/sqrt(budget)``.
    seed:
        Noise stream seed (per (config, budget) — re-evaluations at the
        same budget reproduce).
    """

    def __init__(
        self,
        base: SurrogateEvaluator | None = None,
        gap: float = 12.0,
        tau: float = 3.0,
        noise_at_one_epoch: float = 1.5,
        seed: int = 0,
    ) -> None:
        if gap < 0 or tau <= 0 or noise_at_one_epoch < 0:
            raise ValueError("gap/tau/noise must be non-negative (tau positive)")
        self.base = base if base is not None else SurrogateEvaluator(seed=seed)
        self.gap = gap
        self.tau = tau
        self.noise_at_one_epoch = noise_at_one_epoch
        self.seed = seed

    def evaluate_at(self, config: ModelConfig, budget: int) -> float:
        if budget < 1:
            raise ValueError(f"budget must be >= 1 epoch, got {budget}")
        full = self.base.evaluate(config).accuracy
        bias = self.gap * math.exp(-budget / self.tau)
        rng = np.random.default_rng(stable_hash(self.seed, "fidelity", config.to_dict(), budget))
        noise = rng.normal(0.0, self.noise_at_one_epoch / math.sqrt(budget))
        return float(np.clip(full - bias + noise, 50.0, 99.5))


class FidelityTrainer(FidelityEvaluator):
    """Real training at the requested epoch budget (k-fold protocol)."""

    def __init__(self, dataset: DrainageCrossingDataset, k: int = 2, lr: float = 0.02, seed: int = 0) -> None:
        self.dataset = dataset
        self.k = k
        self.lr = lr
        self.seed = seed

    def evaluate_at(self, config: ModelConfig, budget: int) -> float:
        settings = TrainSettings(epochs=budget, k=self.k, lr=self.lr)
        accs = cross_validate_model(config, self.dataset, settings=settings,
                                    seed=stable_hash(self.seed, config.to_dict(), bits=32))
        return float(np.mean(accs))


@dataclass
class HalvingResult:
    """Outcome of one successive-halving bracket."""

    survivors: list[tuple[ModelConfig, float]]  # final rung, best first
    rung_history: list[list[tuple[ModelConfig, float]]] = field(default_factory=list)
    total_epochs_spent: int = 0

    @property
    def best(self) -> tuple[ModelConfig, float]:
        """The bracket winner and its final-rung accuracy."""
        return self.survivors[0]


def successive_halving(
    configs: list[ModelConfig],
    evaluator: FidelityEvaluator,
    min_budget: int = 1,
    max_budget: int = 8,
    eta: int = 2,
) -> HalvingResult:
    """One synchronous successive-halving bracket.

    Evaluate every candidate at ``min_budget`` epochs, keep the top
    ``1/eta`` fraction, multiply the budget by ``eta``, repeat until
    ``max_budget`` — spending most epochs only on promising candidates.

    Returns the final-rung survivors sorted best-first, the full rung
    history, and the total epoch budget consumed.
    """
    if not configs:
        raise ValueError("successive halving needs at least one candidate")
    if eta < 2:
        raise ValueError(f"eta must be >= 2, got {eta}")
    if not 1 <= min_budget <= max_budget:
        raise ValueError(f"need 1 <= min_budget <= max_budget, got {min_budget}, {max_budget}")

    result = HalvingResult(survivors=[])
    candidates = list(configs)
    budget = min_budget
    spent = 0
    while True:
        scored = [(cfg, evaluator.evaluate_at(cfg, budget)) for cfg in candidates]
        spent += budget * len(candidates)
        scored.sort(key=lambda cs: -cs[1])
        result.rung_history.append(scored)
        if budget >= max_budget or len(scored) == 1:
            result.survivors = scored
            break
        keep = max(1, len(scored) // eta)
        candidates = [cfg for cfg, _ in scored[:keep]]
        budget = min(budget * eta, max_budget)
    result.total_epochs_spent = spent
    return result
