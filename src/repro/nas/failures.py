"""Deterministic trial-failure injection.

The paper launched 6 x 288 = 1,728 grid trials but reports 1,717 valid
outcomes; the 11 missing trials failed at run time (the space contains no
structurally invalid configs for 100x100 inputs — see DESIGN.md).  The
injector reproduces that effect deterministically: a seeded hash marks a
fixed subset of trial indices as failed, and 'paper mode' picks exactly
11 of 1,728.

This module is the minimal, paper-faithful injector.  The general chaos
harness — typed transient exceptions, latency spikes, deadline-testing
hangs, worker kills, store-tail corruption — lives in
:mod:`repro.faults`; its :meth:`repro.faults.FaultPlan.paper_mode`
preset selects the *same* 11 trial indices as this injector for the same
seed (it delegates to :meth:`FailureInjector.paper_mode`), so either can
drive the paper accounting.
"""

from __future__ import annotations

from repro.utils.rng import rng_from_seed, stable_hash

__all__ = ["FailureInjector", "PAPER_FAILURE_COUNT", "PAPER_TRIAL_COUNT"]

PAPER_TRIAL_COUNT = 1728
PAPER_FAILURE_COUNT = 11


class FailureInjector:
    """Marks a deterministic subset of trial indices as failed.

    Parameters
    ----------
    total:
        Total number of trials in the run.
    failures:
        How many of them fail.
    seed:
        Selects which indices fail (same seed -> same set).
    """

    def __init__(self, total: int, failures: int = 0, seed: int = 0) -> None:
        if failures < 0 or failures > total:
            raise ValueError(f"failures must be in [0, {total}], got {failures}")
        self.total = total
        self.failures = failures
        rng = rng_from_seed(stable_hash("failure-injection", seed, total, failures))
        self._failed = frozenset(map(int, rng.choice(total, size=failures, replace=False))) if failures else frozenset()

    @classmethod
    def none(cls) -> "FailureInjector":
        """An injector that fails nothing."""
        return cls(total=1, failures=0)

    @classmethod
    def paper_mode(cls, seed: int = 0) -> "FailureInjector":
        """The paper's 11-of-1,728 failure pattern."""
        return cls(total=PAPER_TRIAL_COUNT, failures=PAPER_FAILURE_COUNT, seed=seed)

    def fails(self, trial_index: int) -> bool:
        """Whether the given trial index is injected as a failure."""
        return trial_index in self._failed

    @property
    def failed_indices(self) -> frozenset[int]:
        """The injected failure set."""
        return self._failed

    def describe(self) -> str:
        """Stable one-line identity (used by the store's run manifest)."""
        return (
            f"FailureInjector(total={self.total}, failures={self.failures}, "
            f"failed={sorted(self._failed)})"
        )

    def to_fault_plan(self) -> "object":
        """The equivalent :class:`repro.faults.FaultPlan` (same trial set)."""
        from repro.faults import Fault, FaultKind, FaultPlan  # lazy: avoid cycle

        return FaultPlan(
            (Fault(FaultKind.TRIAL_FAILURE, t) for t in sorted(self._failed)),
        )
