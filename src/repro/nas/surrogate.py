"""Calibrated analytic accuracy surrogate.

Training 1,717 CNNs with 5-fold CV is a multi-GPU-day workload (the paper
reports 9h20m-29h per input combination on an A100); this sandbox has one
CPU core.  The surrogate replaces *only* the accuracy measurement — the
models, dataset, latency and memory pipelines stay real — with a
structured linear model over interpretable architecture features:

- channel count (7-channel inputs carry NDVI/NDWI signal: positive),
  interacting with capacity (extra channels help wider models more);
- batch size (16 is the sweet spot; 32 under-trains in 5 epochs,
  interacting with channels as Table 5 shows);
- capacity f (wider models overfit the 12k-sample dataset: negative);
- stem geometry: 7x7 kernels, padding/kernel mismatch, and extreme stem
  downsampling (D=1 keeps no context, D=4 is mildly beneficial) all carry
  coefficients;
- pooling presence (information loss: mildly negative);
- a per-configuration noise term seeded by the config identity, modeling
  NNI run-to-run variance.

The coefficients are least-squares fitted to the paper's 11 anchor
accuracies (Tables 4-5) with priors on the features those anchors do not
cover; the fit is frozen in :data:`DEFAULT_COEFFICIENTS`.  See DESIGN.md
Section 2 for why this substitution preserves the orderings that give the
paper its Pareto structure.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.nas.config import ModelConfig
from repro.nas.evaluators import AccuracyEvaluator, EvalResult
from repro.utils.rng import stable_hash

__all__ = ["SurrogateCoefficients", "DEFAULT_COEFFICIENTS", "featurize", "fit_surrogate", "SurrogateEvaluator", "PAPER_ACCURACY_ANCHORS"]

_FEATURE_NAMES = (
    "intercept",
    "ch7",
    "ch7_capacity",
    "batch8",
    "batch32",
    "batch32_ch7",
    "capacity",
    "kernel7",
    "pad_mismatch",
    "downsample1",
    "downsample4",
    "pool",
    "pool_batch16",
)


def featurize(config: ModelConfig) -> np.ndarray:
    """Map a configuration to the surrogate's feature vector.

    ``capacity`` is ``(f - 32) / 32`` in {0, 0.5, 1}; ``pad_mismatch`` is
    ``|padding - kernel // 2|`` (how far the padding is from
    shape-preserving); ``downsampleX`` are indicators of the total stem
    downsampling factor.
    """
    capacity = (config.initial_output_feature - 32) / 32.0
    ch7 = 1.0 if config.channels == 7 else 0.0
    b8 = 1.0 if config.batch == 8 else 0.0
    b16 = 1.0 if config.batch == 16 else 0.0
    b32 = 1.0 if config.batch == 32 else 0.0
    k7 = 1.0 if config.kernel_size == 7 else 0.0
    downsample = config.stem_downsample()
    return np.array(
        [
            1.0,
            ch7,
            ch7 * capacity,
            b8,
            b32,
            b32 * ch7,
            capacity,
            k7,
            abs(config.padding - config.kernel_size // 2),
            1.0 if downsample <= 1 else 0.0,
            1.0 if downsample >= 4 else 0.0,
            float(config.pool_choice),
            float(config.pool_choice) * b16,
        ]
    )


@dataclass(frozen=True)
class SurrogateCoefficients:
    """Linear-model coefficients, one per feature (accuracy in percent)."""

    intercept: float = 95.8116
    ch7: float = 0.3184
    ch7_capacity: float = 1.4966
    batch8: float = -1.4932
    batch32: float = -4.9265
    batch32_ch7: float = 3.0250
    capacity: float = -1.8000
    kernel7: float = -0.5683
    pad_mismatch: float = -1.2000
    downsample1: float = -8.0000
    downsample4: float = 1.5016
    pool: float = -0.3484
    pool_batch16: float = -1.1999

    def as_vector(self) -> np.ndarray:
        """Coefficients in feature order."""
        return np.array([getattr(self, name) for name in _FEATURE_NAMES])

    @classmethod
    def from_vector(cls, vector: np.ndarray) -> "SurrogateCoefficients":
        """Build from a vector in feature order."""
        return cls(**dict(zip(_FEATURE_NAMES, map(float, vector))))


#: The paper's accuracy anchors: (config fields..., accuracy%).
#: Six Table-5 baseline variants + five Table-4 Pareto solutions.
PAPER_ACCURACY_ANCHORS: tuple[tuple[ModelConfig, float], ...] = tuple(
    (ModelConfig(**cfg), acc)
    for cfg, acc in [
        (dict(channels=5, batch=8, kernel_size=7, stride=2, padding=3, pool_choice=1,
              kernel_size_pool=3, stride_pool=2, initial_output_feature=64), 92.90),
        (dict(channels=5, batch=16, kernel_size=7, stride=2, padding=3, pool_choice=1,
              kernel_size_pool=3, stride_pool=2, initial_output_feature=64), 93.60),
        (dict(channels=5, batch=32, kernel_size=7, stride=2, padding=3, pool_choice=1,
              kernel_size_pool=3, stride_pool=2, initial_output_feature=64), 89.67),
        (dict(channels=7, batch=8, kernel_size=7, stride=2, padding=3, pool_choice=1,
              kernel_size_pool=3, stride_pool=2, initial_output_feature=64), 94.76),
        (dict(channels=7, batch=16, kernel_size=7, stride=2, padding=3, pool_choice=1,
              kernel_size_pool=3, stride_pool=2, initial_output_feature=64), 95.37),
        (dict(channels=7, batch=32, kernel_size=7, stride=2, padding=3, pool_choice=1,
              kernel_size_pool=3, stride_pool=2, initial_output_feature=64), 94.51),
        (dict(channels=7, batch=16, kernel_size=3, stride=2, padding=1, pool_choice=0,
              kernel_size_pool=3, stride_pool=2, initial_output_feature=32), 96.13),
        (dict(channels=5, batch=16, kernel_size=3, stride=2, padding=1, pool_choice=0,
              kernel_size_pool=2, stride_pool=2, initial_output_feature=32), 95.45),
        (dict(channels=7, batch=8, kernel_size=3, stride=2, padding=1, pool_choice=1,
              kernel_size_pool=3, stride_pool=2, initial_output_feature=32), 95.79),
        (dict(channels=5, batch=8, kernel_size=3, stride=2, padding=1, pool_choice=0,
              kernel_size_pool=3, stride_pool=2, initial_output_feature=32), 94.68),
        (dict(channels=5, batch=8, kernel_size=3, stride=2, padding=1, pool_choice=1,
              kernel_size_pool=3, stride_pool=1, initial_output_feature=32), 93.97),
    ]
)

# Priors for features the anchors do not identify.  All anchors share
# pad_mismatch=0 and downsample>=2, so those two come from domain
# judgement (severe under-downsampling and mismatched padding both hurt).
# ``capacity`` and ``kernel7`` are perfectly collinear in the anchors
# (every f=64 anchor is also k=7), so their split is a calibration choice:
# the prior attributes most of the deficit to capacity — overfitting the
# 12k-sample dataset — which is the mechanism the paper itself expects
# ("a streamlined architecture ... would effectively address our
# objective", Section 3.2).  ``pool_batch16`` is likewise unidentified
# (no batch-16 pooled anchor exists); its prior keeps the noise-free
# accuracy argmax at the paper's Table-4 winner (7ch/b16/no-pool/f32).
_PRIOR_VALUES = {
    "pad_mismatch": -1.20,
    "downsample1": -8.00,
    "capacity": -1.80,
    "pool_batch16": -1.20,
}
_PRIOR_WEIGHT = 50.0


def fit_surrogate(
    anchors: tuple[tuple[ModelConfig, float], ...] = PAPER_ACCURACY_ANCHORS,
) -> SurrogateCoefficients:
    """Least-squares fit of the coefficients to the paper anchors.

    Unidentified features are pinned to their priors with heavy weights.
    """
    rows = [featurize(cfg) for cfg, _ in anchors]
    targets = [acc for _, acc in anchors]
    a = np.array(rows)
    b = np.array(targets)
    for name, value in _PRIOR_VALUES.items():
        prior_row = np.zeros(len(_FEATURE_NAMES))
        prior_row[_FEATURE_NAMES.index(name)] = _PRIOR_WEIGHT
        a = np.vstack([a, prior_row])
        b = np.append(b, _PRIOR_WEIGHT * value)
    solution, *_ = np.linalg.lstsq(a, b, rcond=None)
    return SurrogateCoefficients.from_vector(solution)


#: Frozen result of :func:`fit_surrogate` on the paper anchors.
DEFAULT_COEFFICIENTS = SurrogateCoefficients()


class SurrogateEvaluator(AccuracyEvaluator):
    """Accuracy evaluation via the calibrated analytic model.

    Parameters
    ----------
    coefficients:
        Linear-model coefficients (defaults to the paper-calibrated fit).
    noise_sigma:
        Std (in accuracy %) of the per-configuration noise modeling NNI
        run-to-run variance; seeded by ``(seed, config)`` so results are
        reproducible yet distinct per config.
    fold_sigma:
        Spread of the synthetic 5-fold accuracies around the mean.
    k:
        Number of CV folds reported.
    seed:
        Root noise seed.
    """

    def __init__(
        self,
        coefficients: SurrogateCoefficients = DEFAULT_COEFFICIENTS,
        noise_sigma: float = 0.25,
        fold_sigma: float = 0.40,
        k: int = 5,
        seed: int = 0,
    ) -> None:
        if noise_sigma < 0 or fold_sigma < 0:
            raise ValueError("noise magnitudes must be non-negative")
        self.coefficients = coefficients
        self.noise_sigma = noise_sigma
        self.fold_sigma = fold_sigma
        self.k = k
        self.seed = seed

    def expected_accuracy(self, config: ModelConfig) -> float:
        """Noise-free model prediction (percent)."""
        value = float(featurize(config) @ self.coefficients.as_vector())
        return float(np.clip(value, 50.0, 99.5))

    def evaluate(self, config: ModelConfig) -> EvalResult:
        """Noisy accuracy draw with synthetic per-fold values."""
        rng = np.random.default_rng(stable_hash(self.seed, "surrogate", config.to_dict()))
        mean = self.expected_accuracy(config) + float(rng.normal(0.0, self.noise_sigma))
        mean = float(np.clip(mean, 50.0, 99.5))
        offsets = rng.normal(0.0, self.fold_sigma, size=self.k)
        offsets -= offsets.mean()  # folds average exactly to the mean
        folds = tuple(float(np.clip(mean + o, 50.0, 99.9)) for o in offsets)
        return EvalResult(accuracy=mean, fold_accuracies=folds)
