"""Trial accuracy evaluators.

Two backends share one interface:

- :class:`TrainingEvaluator` — the honest path: builds the configured
  model, trains it with SGD on the synthetic drainage dataset, and scores
  it with k-fold cross-validation (the paper's exact protocol, Section
  3.2).  Used by tests, examples, and the profiled mini-sweep bench.
- :class:`~repro.nas.surrogate.SurrogateEvaluator` — the calibrated
  analytic substitute used for the full 1,717-trial sweeps.

Batched evaluation is one entry point since the obs consolidation:
``evaluate(configs, resilient=...)`` accepts either a single
:class:`~repro.nas.config.ModelConfig` (returning a bare
:class:`EvalResult`, the contract the Experiment runner uses) or a
sequence of them (returning a list of :class:`EvalOutcome` envelopes —
result-or-failure plus attempts, duration and the worker's span id).
The pre-consolidation names ``evaluate_many`` and
``evaluate_many_resilient`` remain as deprecated shims that return
bitwise-identical values to what they always returned.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, replace
from typing import Sequence

import repro.obs as obs
from repro.data.dataset import DrainageCrossingDataset
from repro.nas.config import ModelConfig
from repro.nas.crossval import TrainSettings, cross_validate_model
from repro.parallel.executor import Executor, MapItemResult, make_executor
from repro.utils.rng import stable_hash

__all__ = ["EvalResult", "EvalOutcome", "AccuracyEvaluator", "TrainingEvaluator"]


@dataclass(frozen=True)
class EvalResult:
    """Outcome of an accuracy evaluation: CV mean + per-fold values."""

    accuracy: float
    fold_accuracies: tuple[float, ...]


@dataclass(frozen=True)
class EvalOutcome:
    """Envelope around one batched evaluation: result *or* failure.

    Returned (one per input, in input order) by
    ``TrainingEvaluator.evaluate(configs, ...)`` when ``configs`` is a
    sequence.  ``result`` is ``None`` exactly when ``ok`` is false;
    ``error`` then carries ``"ErrorType: message"``.  ``attempts``
    counts executions of the trial (>1 only under ``resilient=True``
    with retries), ``duration_s`` is the worker-side wall time of the
    evaluation, and ``span_id`` is the id of the worker's
    ``"evaluate"`` span (empty while observability is disabled) so a
    trace viewer can be joined back to the outcome.
    """

    config: ModelConfig
    ok: bool
    result: EvalResult | None = None
    error: str = ""
    attempts: int = 1
    duration_s: float = 0.0
    span_id: str = ""

    def unwrap(self) -> EvalResult:
        """The result, or raise ``RuntimeError`` if the trial failed."""
        if not self.ok or self.result is None:
            raise RuntimeError(f"evaluation failed for {self.config}: {self.error}")
        return self.result


class AccuracyEvaluator:
    """Interface every accuracy backend implements."""

    def evaluate(self, config: ModelConfig) -> EvalResult:
        """Score one configuration; returns percent accuracy."""
        raise NotImplementedError


class TrainingEvaluator(AccuracyEvaluator):
    """Real k-fold cross-validated training on the synthetic dataset.

    Parameters
    ----------
    samples_per_class:
        Per-region, per-class dataset size (small values keep CPU training
        tractable; the paper's full counts need ``None``).
    patch_size:
        Patch edge length (paper: 100; tests use 24-32).
    epochs:
        Training epochs per fold (the paper used 5).
    k:
        Cross-validation folds (the paper used 5).
    lr, momentum, weight_decay:
        SGD hyperparameters.
    regions:
        Region subset; ``None`` means all four.
    seed:
        Root seed for data, splits, init and shuffling.
    augment:
        Apply dihedral augmentation to training batches.
    workspaces:
        Pool conv/pool scratch buffers across training steps
        (:func:`repro.tensor.use_workspaces`); bitwise-identical
        results, substantially less allocation traffic.  Default on.
    executor, workers:
        Backend for the k independent folds (``"serial"`` or
        ``"process"``).  The process pool is created lazily, reused
        across :meth:`evaluate` calls and released by :meth:`close`;
        fold accuracies are bitwise-equal to the serial backend.
    """

    def __init__(
        self,
        samples_per_class: int = 8,
        patch_size: int = 32,
        epochs: int = 2,
        k: int = 5,
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
        regions: list[str] | None = None,
        seed: int = 0,
        augment: bool = False,
        workspaces: bool = True,
        executor: str = "serial",
        workers: int | None = None,
    ) -> None:
        self.samples_per_class = samples_per_class
        self.patch_size = patch_size
        self.settings = TrainSettings(
            epochs=epochs, k=k, lr=lr, momentum=momentum, weight_decay=weight_decay,
            augment=augment, workspaces=workspaces, executor=executor, workers=workers,
        )
        self.regions = regions
        self.seed = seed
        self._datasets: dict[int, DrainageCrossingDataset] = {}
        self._executor: Executor | None = None

    def _fold_executor(self) -> Executor:
        """The lazily created, reused fold executor."""
        if self._executor is None:
            self._executor = make_executor(
                self.settings.executor, workers=self.settings.workers, chunksize=1
            )
        return self._executor

    def close(self) -> None:
        """Release the fold executor (worker processes, if any)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "TrainingEvaluator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __getstate__(self) -> dict:
        # Live process pools are not picklable; workers rebuild lazily
        # (and `_evaluate_trial` forces serial folds anyway).
        state = self.__dict__.copy()
        state["_executor"] = None
        return state

    def _dataset(self, channels: int) -> DrainageCrossingDataset:
        if channels not in self._datasets:
            self._datasets[channels] = DrainageCrossingDataset(
                channels=channels,
                size=self.patch_size,
                samples_per_class=self.samples_per_class,
                regions=self.regions,
                seed=self.seed,
            )
        return self._datasets[channels]

    def evaluate(
        self,
        configs: "ModelConfig | Sequence[ModelConfig]",
        *,
        resilient: bool = False,
    ) -> "EvalResult | list[EvalOutcome]":
        """Train/evaluate one configuration or a batch of them.

        Single :class:`~repro.nas.config.ModelConfig`
            Runs k-fold CV through the evaluator's (reused) fold
            executor and returns a bare :class:`EvalResult` — the
            contract the Experiment runner and every pre-consolidation
            caller relies on.  ``resilient=True`` is rejected here:
            resilience is a property of batched maps.

        Sequence of configurations
            Parallelizes across *trials* (one task per configuration;
            folds run serially inside each worker so pools never nest)
            and returns one :class:`EvalOutcome` per input, in order.
            With ``resilient=False`` any trial error propagates (every
            outcome has ``ok=True``); with ``resilient=True`` a trial
            that raises — or whose pool worker dies — yields a failed
            outcome while the others still carry their results, with
            killed pools respawned and in-flight trials requeued
            (:meth:`repro.parallel.Executor.map_resilient`).

        Per-trial seeds are content-derived (``stable_hash(seed,
        "trial", config)``), so batched results are bitwise-identical
        to ``[self.evaluate(c) for c in configs]`` on every backend.
        When observability is enabled, each trial runs under an
        ``"evaluate"`` span stitched to the caller's active span even
        across process boundaries.
        """
        if isinstance(configs, ModelConfig):
            if resilient:
                raise TypeError(
                    "resilient=True applies to batched evaluation; "
                    "pass a sequence of configs (e.g. [config])"
                )
            return self._evaluate_single(configs)
        config_list = list(configs)
        items = self._map_trials(config_list, resilient=resilient)
        return [_outcome_from_item(item, config_list[item.index]) for item in items]

    def _evaluate_single(self, config: ModelConfig) -> EvalResult:
        dataset = self._dataset(config.channels)
        fold_accs = cross_validate_model(
            config,
            dataset,
            settings=self.settings,
            seed=stable_hash(self.seed, "trial", config.to_dict(), bits=32),
            executor=self._fold_executor(),
        )
        mean = float(sum(fold_accs) / len(fold_accs))
        return EvalResult(accuracy=mean, fold_accuracies=tuple(fold_accs))

    def _map_trials(
        self, configs: list[ModelConfig], resilient: bool
    ) -> list["MapItemResult"]:
        """Run the batch through a fresh trial executor; returns raw items."""
        ctx = obs.propagated_context()
        tasks = [(self, config, ctx) for config in configs]
        with make_executor(
            self.settings.executor, workers=self.settings.workers, chunksize=1
        ) as executor:
            if resilient:
                return executor.map_resilient(_evaluate_trial, tasks)
            return [
                MapItemResult(index=i, ok=True, value=value)
                for i, value in enumerate(executor.map(_evaluate_trial, tasks))
            ]

    # -- deprecated pre-consolidation entry points ---------------------------

    def evaluate_many(self, configs: Sequence[ModelConfig]) -> list[EvalResult]:
        """Deprecated: use :meth:`evaluate` with a sequence.

        .. deprecated:: PR 4
            ``evaluate_many(configs)`` is ``[o.unwrap() for o in
            evaluate(configs)]``.  Returns bitwise-identical values.
        """
        warnings.warn(
            "TrainingEvaluator.evaluate_many() is deprecated; "
            "use evaluate(configs) and unwrap the EvalOutcome envelopes",
            DeprecationWarning,
            stacklevel=2,
        )
        return [outcome.unwrap() for outcome in self.evaluate(list(configs))]

    def evaluate_many_resilient(self, configs: Sequence[ModelConfig]) -> list["MapItemResult"]:
        """Deprecated: use :meth:`evaluate` with ``resilient=True``.

        .. deprecated:: PR 4
            ``evaluate(configs, resilient=True)`` returns
            :class:`EvalOutcome` envelopes instead of raw
            :class:`~repro.parallel.MapItemResult`; this shim converts
            back (``.value`` carries the bitwise-identical
            :class:`EvalResult`).
        """
        warnings.warn(
            "TrainingEvaluator.evaluate_many_resilient() is deprecated; "
            "use evaluate(configs, resilient=True) and the EvalOutcome envelopes",
            DeprecationWarning,
            stacklevel=2,
        )
        items = self._map_trials(list(configs), resilient=True)
        for item in items:
            if item.ok:
                item.value = item.value.result
        return items


def _outcome_from_item(item: "MapItemResult", config: ModelConfig) -> EvalOutcome:
    """Fold a resilient-map item and its worker envelope into one outcome."""
    if item.ok:
        outcome: EvalOutcome = item.value
        if item.attempts > outcome.attempts:
            outcome = replace(outcome, attempts=item.attempts)
        return outcome
    return EvalOutcome(
        config=config,
        ok=False,
        result=None,
        error=f"{item.error_type}: {item.error}" if item.error_type else item.error,
        attempts=item.attempts,
    )


def _evaluate_trial(
    task: "tuple[TrainingEvaluator, ModelConfig, obs.SpanContext | None]",
) -> EvalOutcome:
    """One trial of a batched :meth:`TrainingEvaluator.evaluate` (picklable).

    Adopts the caller's propagated span context so the worker's
    ``"evaluate"`` (and nested ``"fold"``) spans stitch into the parent
    trace even when this runs in a pool worker process.
    """
    evaluator, config, ctx = (task if len(task) == 3 else (*task, None))
    with obs.adopt_context(ctx):
        started = time.perf_counter()
        with obs.span("evaluate", config=config.config_id()) as sp:
            dataset = evaluator._dataset(config.channels)
            fold_accs = cross_validate_model(
                config,
                dataset,
                settings=replace(evaluator.settings, executor="serial"),
                seed=stable_hash(evaluator.seed, "trial", config.to_dict(), bits=32),
            )
        mean = float(sum(fold_accs) / len(fold_accs))
        return EvalOutcome(
            config=config,
            ok=True,
            result=EvalResult(accuracy=mean, fold_accuracies=tuple(fold_accs)),
            duration_s=time.perf_counter() - started,
            span_id=getattr(sp, "span_id", "") or "",
        )
