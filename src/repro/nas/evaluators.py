"""Trial accuracy evaluators.

Two backends share one interface:

- :class:`TrainingEvaluator` — the honest path: builds the configured
  model, trains it with SGD on the synthetic drainage dataset, and scores
  it with k-fold cross-validation (the paper's exact protocol, Section
  3.2).  Used by tests, examples, and the profiled mini-sweep bench.
- :class:`~repro.nas.surrogate.SurrogateEvaluator` — the calibrated
  analytic substitute used for the full 1,717-trial sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.data.dataset import DrainageCrossingDataset
from repro.nas.config import ModelConfig
from repro.nas.crossval import TrainSettings, cross_validate_model
from repro.parallel.executor import Executor, MapItemResult, make_executor
from repro.utils.rng import stable_hash

__all__ = ["EvalResult", "AccuracyEvaluator", "TrainingEvaluator"]


@dataclass(frozen=True)
class EvalResult:
    """Outcome of an accuracy evaluation: CV mean + per-fold values."""

    accuracy: float
    fold_accuracies: tuple[float, ...]


class AccuracyEvaluator:
    """Interface every accuracy backend implements."""

    def evaluate(self, config: ModelConfig) -> EvalResult:
        """Score one configuration; returns percent accuracy."""
        raise NotImplementedError


class TrainingEvaluator(AccuracyEvaluator):
    """Real k-fold cross-validated training on the synthetic dataset.

    Parameters
    ----------
    samples_per_class:
        Per-region, per-class dataset size (small values keep CPU training
        tractable; the paper's full counts need ``None``).
    patch_size:
        Patch edge length (paper: 100; tests use 24-32).
    epochs:
        Training epochs per fold (the paper used 5).
    k:
        Cross-validation folds (the paper used 5).
    lr, momentum, weight_decay:
        SGD hyperparameters.
    regions:
        Region subset; ``None`` means all four.
    seed:
        Root seed for data, splits, init and shuffling.
    augment:
        Apply dihedral augmentation to training batches.
    workspaces:
        Pool conv/pool scratch buffers across training steps
        (:func:`repro.tensor.use_workspaces`); bitwise-identical
        results, substantially less allocation traffic.  Default on.
    executor, workers:
        Backend for the k independent folds (``"serial"`` or
        ``"process"``).  The process pool is created lazily, reused
        across :meth:`evaluate` calls and released by :meth:`close`;
        fold accuracies are bitwise-equal to the serial backend.
    """

    def __init__(
        self,
        samples_per_class: int = 8,
        patch_size: int = 32,
        epochs: int = 2,
        k: int = 5,
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
        regions: list[str] | None = None,
        seed: int = 0,
        augment: bool = False,
        workspaces: bool = True,
        executor: str = "serial",
        workers: int | None = None,
    ) -> None:
        self.samples_per_class = samples_per_class
        self.patch_size = patch_size
        self.settings = TrainSettings(
            epochs=epochs, k=k, lr=lr, momentum=momentum, weight_decay=weight_decay,
            augment=augment, workspaces=workspaces, executor=executor, workers=workers,
        )
        self.regions = regions
        self.seed = seed
        self._datasets: dict[int, DrainageCrossingDataset] = {}
        self._executor: Executor | None = None

    def _fold_executor(self) -> Executor:
        """The lazily created, reused fold executor."""
        if self._executor is None:
            self._executor = make_executor(
                self.settings.executor, workers=self.settings.workers, chunksize=1
            )
        return self._executor

    def close(self) -> None:
        """Release the fold executor (worker processes, if any)."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "TrainingEvaluator":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __getstate__(self) -> dict:
        # Live process pools are not picklable; workers rebuild lazily
        # (and `_evaluate_trial` forces serial folds anyway).
        state = self.__dict__.copy()
        state["_executor"] = None
        return state

    def _dataset(self, channels: int) -> DrainageCrossingDataset:
        if channels not in self._datasets:
            self._datasets[channels] = DrainageCrossingDataset(
                channels=channels,
                size=self.patch_size,
                samples_per_class=self.samples_per_class,
                regions=self.regions,
                seed=self.seed,
            )
        return self._datasets[channels]

    def evaluate(self, config: ModelConfig) -> EvalResult:
        """Train/evaluate ``config`` with k-fold CV; returns percent accuracy."""
        dataset = self._dataset(config.channels)
        fold_accs = cross_validate_model(
            config,
            dataset,
            settings=self.settings,
            seed=stable_hash(self.seed, "trial", config.to_dict(), bits=32),
            executor=self._fold_executor(),
        )
        mean = float(sum(fold_accs) / len(fold_accs))
        return EvalResult(accuracy=mean, fold_accuracies=tuple(fold_accs))

    def evaluate_many(self, configs: Sequence[ModelConfig]) -> list[EvalResult]:
        """Evaluate a batch of trials, parallelizing across *trials*.

        Routes the independent configurations through the evaluator's
        executor backend (one task per trial); inside each worker the
        folds run serially so a process pool is never nested.  Per-trial
        seeds are content-derived (``stable_hash(seed, "trial",
        config)``), so the results equal ``[self.evaluate(c) for c in
        configs]`` exactly, in order, on every backend.
        """
        tasks = [(self, config) for config in configs]
        with make_executor(
            self.settings.executor, workers=self.settings.workers, chunksize=1
        ) as executor:
            return list(executor.map(_evaluate_trial, tasks))

    def evaluate_many_resilient(self, configs: Sequence[ModelConfig]) -> list["MapItemResult"]:
        """Fault-isolated :meth:`evaluate_many`: one result per trial.

        Uses :meth:`repro.parallel.Executor.map_resilient`, so a trial
        that raises — or whose pool worker dies — yields a failed
        :class:`~repro.parallel.MapItemResult` while every other trial
        still returns its :class:`EvalResult` (in ``.value``).  Killed
        worker pools are respawned and their in-flight trials requeued;
        repeated pool deaths degrade the map to serial execution.
        Successful values are bitwise-identical to :meth:`evaluate_many`
        (per-trial seeds are content-derived, not order-derived).
        """
        tasks = [(self, config) for config in configs]
        with make_executor(
            self.settings.executor, workers=self.settings.workers, chunksize=1
        ) as executor:
            return executor.map_resilient(_evaluate_trial, tasks)


def _evaluate_trial(task: tuple[TrainingEvaluator, ModelConfig]) -> EvalResult:
    """One trial for :meth:`TrainingEvaluator.evaluate_many` (picklable)."""
    evaluator, config = task
    dataset = evaluator._dataset(config.channels)
    fold_accs = cross_validate_model(
        config,
        dataset,
        settings=replace(evaluator.settings, executor="serial"),
        seed=stable_hash(evaluator.seed, "trial", config.to_dict(), bits=32),
    )
    mean = float(sum(fold_accs) / len(fold_accs))
    return EvalResult(accuracy=mean, fold_accuracies=tuple(fold_accs))
