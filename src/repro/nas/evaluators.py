"""Trial accuracy evaluators.

Two backends share one interface:

- :class:`TrainingEvaluator` — the honest path: builds the configured
  model, trains it with SGD on the synthetic drainage dataset, and scores
  it with k-fold cross-validation (the paper's exact protocol, Section
  3.2).  Used by tests, examples, and the profiled mini-sweep bench.
- :class:`~repro.nas.surrogate.SurrogateEvaluator` — the calibrated
  analytic substitute used for the full 1,717-trial sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import DrainageCrossingDataset
from repro.nas.config import ModelConfig
from repro.nas.crossval import TrainSettings, cross_validate_model
from repro.utils.rng import stable_hash

__all__ = ["EvalResult", "AccuracyEvaluator", "TrainingEvaluator"]


@dataclass(frozen=True)
class EvalResult:
    """Outcome of an accuracy evaluation: CV mean + per-fold values."""

    accuracy: float
    fold_accuracies: tuple[float, ...]


class AccuracyEvaluator:
    """Interface every accuracy backend implements."""

    def evaluate(self, config: ModelConfig) -> EvalResult:
        """Score one configuration; returns percent accuracy."""
        raise NotImplementedError


class TrainingEvaluator(AccuracyEvaluator):
    """Real k-fold cross-validated training on the synthetic dataset.

    Parameters
    ----------
    samples_per_class:
        Per-region, per-class dataset size (small values keep CPU training
        tractable; the paper's full counts need ``None``).
    patch_size:
        Patch edge length (paper: 100; tests use 24-32).
    epochs:
        Training epochs per fold (the paper used 5).
    k:
        Cross-validation folds (the paper used 5).
    lr, momentum, weight_decay:
        SGD hyperparameters.
    regions:
        Region subset; ``None`` means all four.
    seed:
        Root seed for data, splits, init and shuffling.
    augment:
        Apply dihedral augmentation to training batches.
    """

    def __init__(
        self,
        samples_per_class: int = 8,
        patch_size: int = 32,
        epochs: int = 2,
        k: int = 5,
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
        regions: list[str] | None = None,
        seed: int = 0,
        augment: bool = False,
    ) -> None:
        self.samples_per_class = samples_per_class
        self.patch_size = patch_size
        self.settings = TrainSettings(
            epochs=epochs, k=k, lr=lr, momentum=momentum, weight_decay=weight_decay, augment=augment
        )
        self.regions = regions
        self.seed = seed
        self._datasets: dict[int, DrainageCrossingDataset] = {}

    def _dataset(self, channels: int) -> DrainageCrossingDataset:
        if channels not in self._datasets:
            self._datasets[channels] = DrainageCrossingDataset(
                channels=channels,
                size=self.patch_size,
                samples_per_class=self.samples_per_class,
                regions=self.regions,
                seed=self.seed,
            )
        return self._datasets[channels]

    def evaluate(self, config: ModelConfig) -> EvalResult:
        """Train/evaluate ``config`` with k-fold CV; returns percent accuracy."""
        dataset = self._dataset(config.channels)
        fold_accs = cross_validate_model(
            config,
            dataset,
            settings=self.settings,
            seed=stable_hash(self.seed, "trial", config.to_dict(), bits=32),
        )
        mean = float(sum(fold_accs) / len(fold_accs))
        return EvalResult(accuracy=mean, fold_accuracies=tuple(fold_accs))
