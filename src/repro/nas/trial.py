"""Trial records: everything one NAS evaluation produces."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.nas.config import ModelConfig

__all__ = ["TrialStatus", "TrialRecord"]


class TrialStatus(str, enum.Enum):
    """Lifecycle state of one trial."""

    OK = "ok"
    FAILED = "failed"


@dataclass
class TrialRecord:
    """One evaluated configuration with all three objective values.

    ``fold_accuracies`` holds the 5-fold CV results whose mean is the
    paper's 'accuracy' column; ``per_device_ms`` holds the four nn-Meter
    style predictions whose mean/std are 'latency' and 'lat_std'.
    """

    trial_id: int
    config: ModelConfig
    status: TrialStatus = TrialStatus.OK
    accuracy: float = 0.0
    fold_accuracies: tuple[float, ...] = ()
    latency_ms: float = 0.0
    lat_std: float = 0.0
    per_device_ms: dict[str, float] = field(default_factory=dict)
    memory_mb: float = 0.0
    param_count: int = 0
    flops: int = 0
    duration_s: float = 0.0
    error: str = ""
    #: Fault-tolerance bookkeeping (see :mod:`repro.nas.retry`):
    #: how many attempts the trial took (1 = first try succeeded),
    #: the :class:`~repro.nas.retry.ErrorKind` of the final failure
    #: (``""`` for successes), the captured traceback of an unexpected
    #: failure, and device predictors skipped by graceful degradation.
    attempts: int = 1
    error_kind: str = ""
    traceback: str = ""
    skipped_devices: tuple[str, ...] = ()

    @property
    def retried(self) -> bool:
        """Whether the trial needed more than one attempt."""
        return self.attempts > 1

    @property
    def ok(self) -> bool:
        """Whether the trial completed successfully."""
        return self.status is TrialStatus.OK

    def objectives(self) -> dict[str, float]:
        """The three paper objectives as a flat record."""
        return {
            "accuracy": self.accuracy,
            "latency_ms": self.latency_ms,
            "memory_mb": self.memory_mb,
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation."""
        return {
            "trial_id": self.trial_id,
            "config": self.config.to_dict(),
            "status": self.status.value,
            "accuracy": self.accuracy,
            "fold_accuracies": list(self.fold_accuracies),
            "latency_ms": self.latency_ms,
            "lat_std": self.lat_std,
            "per_device_ms": dict(self.per_device_ms),
            "memory_mb": self.memory_mb,
            "param_count": self.param_count,
            "flops": self.flops,
            "duration_s": self.duration_s,
            "error": self.error,
            "attempts": self.attempts,
            "error_kind": self.error_kind,
            "traceback": self.traceback,
            "skipped_devices": list(self.skipped_devices),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrialRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            trial_id=int(data["trial_id"]),
            config=ModelConfig.from_dict(data["config"]),
            status=TrialStatus(data.get("status", "ok")),
            accuracy=float(data.get("accuracy", 0.0)),
            fold_accuracies=tuple(float(a) for a in data.get("fold_accuracies", ())),
            latency_ms=float(data.get("latency_ms", 0.0)),
            lat_std=float(data.get("lat_std", 0.0)),
            per_device_ms={k: float(v) for k, v in data.get("per_device_ms", {}).items()},
            memory_mb=float(data.get("memory_mb", 0.0)),
            param_count=int(data.get("param_count", 0)),
            flops=int(data.get("flops", 0)),
            duration_s=float(data.get("duration_s", 0.0)),
            error=str(data.get("error", "")),
            attempts=int(data.get("attempts", 1)),
            error_kind=str(data.get("error_kind", "")),
            traceback=str(data.get("traceback", "")),
            skipped_devices=tuple(str(d) for d in data.get("skipped_devices", ())),
        )

    def as_analysis_record(self) -> dict[str, Any]:
        """Flat record for :class:`repro.pareto.ParetoAnalysis` and reports."""
        row = self.objectives()
        row.update(self.config.to_dict())
        row["trial_id"] = self.trial_id
        row["lat_std"] = self.lat_std
        return row
