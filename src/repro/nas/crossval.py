"""K-fold cross-validated training of one configuration.

Implements the paper's evaluation protocol: split the dataset into k
folds; for each fold train a freshly initialized model on the remaining
k-1 folds and measure accuracy on the held-out fold; report all fold
accuracies (their mean is the NNI objective).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.augment import augment_batch
from repro.data.dataset import DrainageCrossingDataset
from repro.data.sampler import BatchSampler
from repro.data.splits import kfold_indices
from repro.nas.config import ModelConfig
from repro.nn.loss import CrossEntropyLoss
from repro.nn.optim import SGD
from repro.nn.resnet import build_model
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.rng import SeedSequenceFactory

__all__ = ["TrainSettings", "train_one_model", "evaluate_accuracy", "cross_validate_model"]


@dataclass(frozen=True)
class TrainSettings:
    """Hyperparameters of one training run (paper defaults: 5 epochs, k=5).

    ``recalibrate_bn`` replaces the batch-norm running statistics with
    exact training-set statistics after training (the ``update_bn`` trick).
    At the paper's scale (~1,200 updates/epoch) the EMA converges on its
    own; at this library's CPU-test scale (a handful of updates) stale
    running stats would otherwise wreck eval-mode accuracy.
    """

    epochs: int = 5
    k: int = 5
    lr: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 1e-4
    augment: bool = False
    eval_batch: int = 32
    recalibrate_bn: bool = True


def recalibrate_batchnorm(
    model,
    dataset: DrainageCrossingDataset,
    indices: np.ndarray,
    batch_size: int,
) -> None:
    """Recompute BN running statistics from the training data.

    Runs forward passes in training mode with per-batch momentum ``1/i``,
    which makes the running buffers the cumulative average of the batch
    statistics — the exact-calibration scheme of
    ``torch.optim.swa_utils.update_bn``.
    """
    from repro.nn.layers import BatchNorm2d

    bn_layers = [m for m in model.modules() if isinstance(m, BatchNorm2d)]
    if not bn_layers:
        return
    for bn in bn_layers:
        bn.running_mean[:] = 0.0
        bn.running_var[:] = 0.0
    model.train()
    with no_grad():
        for i, start in enumerate(range(0, indices.size, batch_size), start=1):
            chunk = indices[start : start + batch_size]
            if chunk.size < 2:  # variance of a single sample is degenerate
                continue
            for bn in bn_layers:
                bn.momentum = 1.0 / i
            x, _ = dataset.batch(chunk)
            model(Tensor(x))
    for bn in bn_layers:
        bn.momentum = 0.1


def train_one_model(
    model,
    dataset: DrainageCrossingDataset,
    train_indices: np.ndarray,
    batch_size: int,
    settings: TrainSettings,
    rng_seed: int,
) -> float:
    """Train ``model`` in place; returns the final epoch's mean loss."""
    seeds = SeedSequenceFactory(rng_seed)
    sampler = BatchSampler(
        dataset, batch_size=batch_size, indices=train_indices, shuffle=True, rng=seeds.rng("shuffle")
    )
    loss_fn = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=settings.lr, momentum=settings.momentum,
                    weight_decay=settings.weight_decay)
    augment_rng = seeds.rng("augment")
    model.train()
    last_epoch_loss = 0.0
    for _epoch in range(settings.epochs):
        losses = []
        for x, y in sampler:
            if settings.augment:
                x = augment_batch(x, rng=augment_rng)
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        last_epoch_loss = float(np.mean(losses)) if losses else 0.0
    if settings.recalibrate_bn:
        recalibrate_batchnorm(model, dataset, train_indices, batch_size)
    return last_epoch_loss


def evaluate_accuracy(model, dataset: DrainageCrossingDataset, indices: np.ndarray, batch: int = 32) -> float:
    """Accuracy (percent) of ``model`` on the given samples."""
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, indices.size, batch):
            chunk = indices[start : start + batch]
            x, y = dataset.batch(chunk)
            logits = model(Tensor(x))
            correct += int((logits.data.argmax(axis=1) == y).sum())
    return 100.0 * correct / indices.size


def cross_validate_model(
    config: ModelConfig,
    dataset: DrainageCrossingDataset,
    settings: TrainSettings,
    seed: int = 0,
) -> list[float]:
    """The paper's k-fold CV: k independent train/validate runs.

    Returns the k fold accuracies in percent.
    """
    if dataset.channels != config.channels:
        raise ValueError(
            f"dataset has {dataset.channels} channels but config expects {config.channels}"
        )
    seeds = SeedSequenceFactory(seed)
    folds = kfold_indices(len(dataset), k=settings.k, seed=seeds.seed_for("folds") % (2**31))
    accuracies: list[float] = []
    for fold_idx, (train_idx, val_idx) in enumerate(folds):
        model = build_model(config, seed=seeds.seed_for("init", fold_idx) % (2**31))
        train_one_model(
            model,
            dataset,
            train_idx,
            batch_size=config.batch,
            settings=settings,
            rng_seed=seeds.seed_for("train", fold_idx),
        )
        accuracies.append(evaluate_accuracy(model, dataset, val_idx, batch=settings.eval_batch))
    return accuracies
