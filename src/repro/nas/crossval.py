"""K-fold cross-validated training of one configuration.

Implements the paper's evaluation protocol: split the dataset into k
folds; for each fold train a freshly initialized model on the remaining
k-1 folds and measure accuracy on the held-out fold; report all fold
accuracies (their mean is the NNI objective).

Folds are independent by construction — every fold derives its init,
shuffle and augmentation streams from :class:`SeedSequenceFactory` keys,
never from shared mutable RNG state — so :func:`cross_validate_model`
can route them through any :class:`repro.parallel.Executor`.  The
process-pool backend returns **bitwise-identical** fold accuracies to
the serial one (``tests/test_nas_training.py`` enforces this), because
serial and parallel execution run the exact same per-fold closure.

Each fold also trains inside a :func:`repro.tensor.use_workspaces`
context (when ``TrainSettings.workspaces`` is set, the default), which
recycles conv im2col/col2im scratch buffers across steps instead of
reallocating them — the training-side analogue of the deploy arena.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.data.augment import augment_batch
from repro.data.dataset import DrainageCrossingDataset
from repro.data.sampler import BatchSampler
from repro.data.splits import kfold_indices
from repro.nas.config import ModelConfig
from repro.nn.loss import CrossEntropyLoss
from repro.nn.optim import SGD
from repro.nn.resnet import build_model
from repro.parallel.executor import Executor, make_executor
from repro.tensor.tensor import Tensor, no_grad
from repro.tensor.workspace import WorkspacePool, use_workspaces
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "TrainSettings",
    "train_one_model",
    "evaluate_accuracy",
    "cross_validate_model",
    "clear_fold_workspaces",
]


@dataclass(frozen=True)
class TrainSettings:
    """Hyperparameters of one training run (paper defaults: 5 epochs, k=5).

    ``recalibrate_bn`` replaces the batch-norm running statistics with
    exact training-set statistics after training (the ``update_bn`` trick).
    At the paper's scale (~1,200 updates/epoch) the EMA converges on its
    own; at this library's CPU-test scale (a handful of updates) stale
    running stats would otherwise wreck eval-mode accuracy.

    The performance-substrate knobs:

    - ``workspaces`` — run each fold inside
      :func:`repro.tensor.use_workspaces`, pooling conv/pool scratch
      buffers across training steps (bitwise-identical results; on by
      default).
    - ``executor`` / ``workers`` — backend for
      :func:`cross_validate_model`'s independent folds: ``"serial"``
      (default) or ``"process"`` with ``workers`` processes.  Fold
      seeding is key-derived, so the parallel backend reproduces the
      serial fold accuracies exactly.
    """

    epochs: int = 5
    k: int = 5
    lr: float = 0.01
    momentum: float = 0.9
    weight_decay: float = 1e-4
    augment: bool = False
    eval_batch: int = 32
    recalibrate_bn: bool = True
    workspaces: bool = True
    executor: str = "serial"
    workers: int | None = None
    #: Fault isolation for the fold map: route folds through
    #: :meth:`repro.parallel.Executor.map_resilient` so one crashed or
    #: poisoned fold degrades the CV estimate (surviving folds are
    #: aggregated, the failure is logged) instead of sinking the trial.
    resilient: bool = False
    #: Minimum surviving folds ``resilient`` mode accepts before the
    #: trial is failed outright (a 1-fold "CV" is not an estimate).
    min_folds: int = 1


def recalibrate_batchnorm(
    model,
    dataset: DrainageCrossingDataset,
    indices: np.ndarray,
    batch_size: int,
) -> None:
    """Recompute BN running statistics from the training data.

    Runs forward passes in training mode with per-batch momentum ``1/i``,
    which makes the running buffers the cumulative average of the batch
    statistics — the exact-calibration scheme of
    ``torch.optim.swa_utils.update_bn``.
    """
    from repro.nn.layers import BatchNorm2d

    bn_layers = [m for m in model.modules() if isinstance(m, BatchNorm2d)]
    if not bn_layers:
        return
    for bn in bn_layers:
        bn.running_mean[:] = 0.0
        bn.running_var[:] = 0.0
    model.train()
    with no_grad():
        for i, start in enumerate(range(0, indices.size, batch_size), start=1):
            chunk = indices[start : start + batch_size]
            if chunk.size < 2:  # variance of a single sample is degenerate
                continue
            for bn in bn_layers:
                bn.momentum = 1.0 / i
            x, _ = dataset.batch(chunk)
            model(Tensor(x))
    for bn in bn_layers:
        bn.momentum = 0.1


def train_one_model(
    model,
    dataset: DrainageCrossingDataset,
    train_indices: np.ndarray,
    batch_size: int,
    settings: TrainSettings,
    rng_seed: int,
) -> float:
    """Train ``model`` in place; returns the final epoch's mean loss."""
    seeds = SeedSequenceFactory(rng_seed)
    sampler = BatchSampler(
        dataset, batch_size=batch_size, indices=train_indices, shuffle=True, rng=seeds.rng("shuffle")
    )
    loss_fn = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=settings.lr, momentum=settings.momentum,
                    weight_decay=settings.weight_decay)
    augment_rng = seeds.rng("augment")
    model.train()
    last_epoch_loss = 0.0
    for _epoch in range(settings.epochs):
        losses = []
        for x, y in sampler:
            if settings.augment:
                x = augment_batch(x, rng=augment_rng)
            optimizer.zero_grad()
            loss = loss_fn(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        last_epoch_loss = float(np.mean(losses)) if losses else 0.0
    if settings.recalibrate_bn:
        recalibrate_batchnorm(model, dataset, train_indices, batch_size)
    return last_epoch_loss


def evaluate_accuracy(model, dataset: DrainageCrossingDataset, indices: np.ndarray, batch: int = 32) -> float:
    """Accuracy (percent) of ``model`` on the given samples."""
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, indices.size, batch):
            chunk = indices[start : start + batch]
            x, y = dataset.batch(chunk)
            logits = model(Tensor(x))
            correct += int((logits.data.argmax(axis=1) == y).sum())
    return 100.0 * correct / indices.size


@dataclass(frozen=True)
class _FoldTask:
    """One self-contained fold: everything a pool worker needs, pickled.

    ``obs_ctx`` is the parent's span context
    (:func:`repro.obs.propagated_context`): the worker adopts it so its
    fold span stitches into the trial span across the process boundary.
    """

    config: ModelConfig
    dataset: DrainageCrossingDataset
    settings: TrainSettings
    train_idx: np.ndarray
    val_idx: np.ndarray
    init_seed: int
    train_seed: int
    fold: int = 0
    obs_ctx: "obs.SpanContext | None" = None


#: Process-local workspace pool shared by every fold this process runs.
#: Folds of one sweep repeat the same conv geometries, so reusing the
#: pool across folds (and trials) turns each fold's initial allocation
#: burst — hundreds of MB of first-touch page faults — into hits.
#: Shape-keyed reuse is bitwise-safe; see :mod:`repro.tensor.workspace`.
_FOLD_POOL: "WorkspacePool | None" = None


def _fold_workspace_pool() -> "WorkspacePool":
    global _FOLD_POOL
    if _FOLD_POOL is None:
        _FOLD_POOL = WorkspacePool()
        # Snapshot-time gauges (hits/misses/pooled bytes) for the obs
        # layer; the acquire/release hot path is untouched.
        _FOLD_POOL.publish_metrics(pool_name="fold")
    return _FOLD_POOL


def clear_fold_workspaces() -> None:
    """Drop the process-local fold pool (frees its pooled scratch)."""
    global _FOLD_POOL
    if _FOLD_POOL is not None:
        _FOLD_POOL.clear()
        _FOLD_POOL = None


#: Fold wall-time histogram (no-op until ``repro.obs.configure``).
_FOLD_SECONDS = obs.histogram("repro_train_fold_seconds")


def _run_fold(task: _FoldTask) -> float:
    """Train and score one fold (top-level so process pools can pickle it).

    When the task carries a propagated span context, the fold runs under
    an adopted ``fold`` span — in a pool worker this re-opens the
    parent's JSONL sink, parents the span to the parent process's trial
    span, and ships the worker's cumulative metrics snapshot home on
    exit.
    """
    context = (
        use_workspaces(_fold_workspace_pool())
        if task.settings.workspaces
        else contextlib.nullcontext()
    )
    with obs.adopt_context(task.obs_ctx):
        with obs.span("fold", fold=task.fold, k=task.settings.k,
                      epochs=task.settings.epochs):
            started = time.perf_counter()
            with context:
                model = build_model(task.config, seed=task.init_seed)
                train_one_model(
                    model,
                    task.dataset,
                    task.train_idx,
                    batch_size=task.config.batch,
                    settings=task.settings,
                    rng_seed=task.train_seed,
                )
                accuracy = evaluate_accuracy(
                    model, task.dataset, task.val_idx, batch=task.settings.eval_batch
                )
            _FOLD_SECONDS.observe(time.perf_counter() - started)
            return accuracy


def cross_validate_model(
    config: ModelConfig,
    dataset: DrainageCrossingDataset,
    settings: TrainSettings,
    seed: int = 0,
    executor: Executor | None = None,
) -> list[float]:
    """The paper's k-fold CV: k independent train/validate runs.

    Parameters
    ----------
    executor:
        Backend for the independent folds.  ``None`` builds one from
        ``settings.executor`` / ``settings.workers`` (and closes it
        afterwards); pass a live :class:`~repro.parallel.Executor` to
        amortize process-pool startup across many trials.  Fold seeds
        are derived per key before dispatch, so every backend returns
        the same accuracies bit for bit.

    Returns the k fold accuracies in percent.  With
    ``settings.resilient`` the map is fault-isolated: folds that raise
    (or whose pool worker dies) are skipped with a warning and the
    surviving accuracies are returned, unless fewer than
    ``settings.min_folds`` survive — then a
    :class:`~repro.nas.retry.PermanentTrialError` reports every fold
    failure.
    """
    if dataset.channels != config.channels:
        raise ValueError(
            f"dataset has {dataset.channels} channels but config expects {config.channels}"
        )
    seeds = SeedSequenceFactory(seed)
    folds = kfold_indices(len(dataset), k=settings.k, seed=seeds.seed_for("folds") % (2**31))
    obs_ctx = obs.propagated_context()  # stitch worker fold spans to the trial span
    tasks = [
        _FoldTask(
            config=config,
            dataset=dataset,
            settings=settings,
            train_idx=train_idx,
            val_idx=val_idx,
            init_seed=seeds.seed_for("init", fold_idx) % (2**31),
            train_seed=seeds.seed_for("train", fold_idx),
            fold=fold_idx,
            obs_ctx=obs_ctx,
        )
        for fold_idx, (train_idx, val_idx) in enumerate(folds)
    ]
    if executor is not None:
        return _map_folds(executor, tasks, settings)
    with make_executor(settings.executor, workers=settings.workers, chunksize=1) as owned:
        return _map_folds(owned, tasks, settings)


def _map_folds(executor: Executor, tasks: list[_FoldTask], settings: TrainSettings) -> list[float]:
    """Dispatch the fold tasks, honoring ``settings.resilient``."""
    if not settings.resilient:
        return list(executor.map(_run_fold, tasks))
    from repro.nas.retry import PermanentTrialError
    from repro.utils.logging import get_logger

    results = executor.map_resilient(_run_fold, tasks)
    survivors = [r.value for r in results if r.ok]
    failed = [r for r in results if not r.ok]
    if failed:
        log = get_logger("nas.crossval")
        for r in failed:
            log.warning("fold %d failed (%s): %s — aggregating surviving folds",
                        r.index, r.error_type, r.error)
    if len(survivors) < max(settings.min_folds, 1):
        details = "; ".join(f"fold {r.index}: {r.error_type}: {r.error}" for r in failed)
        raise PermanentTrialError(
            f"only {len(survivors)}/{len(tasks)} folds survived "
            f"(min_folds={settings.min_folds}): {details}"
        )
    return survivors
