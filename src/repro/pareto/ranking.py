"""Non-dominated sorting into ranks and alternative dominance relations.

Beyond the paper's single-front extraction, these utilities support the
NSGA-II-style multi-objective search strategy
(:class:`repro.nas.moo.NSGAEvolution`) and the Table-4 membership analysis
in EXPERIMENTS.md:

- :func:`fast_non_dominated_sort` — Deb's O(M N^2) ranking into fronts;
- :func:`weak_non_dominated_mask` — points survive unless another point is
  strictly better in *every* objective (the relaxed relation under which
  the paper's pooled Table-4 rows would survive at tied memory);
- :func:`epsilon_non_dominated_mask` — epsilon-dominance front thinning.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "fast_non_dominated_sort",
    "weak_non_dominated_mask",
    "epsilon_non_dominated_mask",
]


def fast_non_dominated_sort(values: np.ndarray) -> np.ndarray:
    """Rank every point by Pareto front index (minimization).

    Rank 0 is the global non-dominated front; removing ranks < r leaves
    rank r as the new front (Deb et al. 2002, NSGA-II).

    Returns
    -------
    np.ndarray
        Integer ranks of shape ``(n,)``.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    ranks = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return ranks
    # Pairwise dominance, vectorized once: dom[i, j] = i dominates j.
    leq = np.all(values[:, None, :] <= values[None, :, :], axis=2)
    lt = np.any(values[:, None, :] < values[None, :, :], axis=2)
    dom = leq & lt
    dominated_count = dom.sum(axis=0)  # how many points dominate j
    current = np.flatnonzero(dominated_count == 0)
    rank = 0
    remaining = dominated_count.copy()
    while current.size:
        ranks[current] = rank
        # Remove the current front; decrement counts of points they dominate.
        decrement = dom[current].sum(axis=0)
        remaining = remaining - decrement
        remaining[current] = -1  # never reselect
        rank += 1
        current = np.flatnonzero(remaining == 0)
    return ranks


def weak_non_dominated_mask(values: np.ndarray) -> np.ndarray:
    """Mask of points not *strictly* dominated in every objective.

    A point is removed only if some other point is strictly smaller in all
    objectives simultaneously.  Ties in any single objective protect a
    point, so this front is always a superset of the standard one.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    mask = np.ones(n, dtype=bool)
    for start in range(0, n, 256):
        block = values[start : start + 256]
        strictly_better = np.all(values[None, :, :] < block[:, None, :], axis=2)
        mask[start : start + 256] = ~np.any(strictly_better, axis=1)
    return mask


def epsilon_non_dominated_mask(values: np.ndarray, epsilon: float | np.ndarray) -> np.ndarray:
    """Additive epsilon-dominance filtering (minimization).

    ``a`` epsilon-dominates ``b`` iff ``a - epsilon <= b`` in all
    objectives and ``a - epsilon < b`` in at least one.  Larger epsilon
    thins the front, yielding a small representative subset — useful when
    presenting dozens of near-identical configurations to a decision maker.
    """
    values = np.asarray(values, dtype=float)
    epsilon = np.broadcast_to(np.asarray(epsilon, dtype=float), (values.shape[1],))
    if np.any(epsilon < 0):
        raise ValueError("epsilon must be non-negative")
    n = values.shape[0]
    mask = np.ones(n, dtype=bool)
    shifted = values - epsilon
    order = np.lexsort(values.T[::-1])
    kept: list[int] = []
    for idx in order:
        point = values[idx]
        dominated = False
        for keeper in kept:
            if np.all(shifted[keeper] <= point) and np.any(shifted[keeper] < point):
                dominated = True
                break
        if dominated:
            mask[idx] = False
        else:
            kept.append(idx)
    return mask
