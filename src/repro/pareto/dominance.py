"""Pareto dominance and non-dominated set extraction.

Internally every objective is converted to *minimization*; a point ``a``
dominates ``b`` iff ``a <= b`` componentwise with at least one strict
inequality.  Two extraction algorithms are provided:

- :func:`non_dominated_mask` — vectorized pairwise comparison, O(n^2)
  work but a single NumPy pass (chunked to bound memory); simple and the
  reference implementation for testing.
- :func:`non_dominated_mask_kung` — Kung's divide-and-conquer, the
  classical O(n log^(d-2) n) algorithm; faster on large fronts and used
  by the benchmark sweeps.

Duplicated points never dominate each other (domination is strict), so
identical configurations all survive, matching how the paper's analysis
kept equal-objective trials.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

__all__ = [
    "ObjectiveSense",
    "to_minimization",
    "dominates",
    "non_dominated_mask",
    "non_dominated_mask_kung",
    "pareto_front_indices",
]


class ObjectiveSense(str, enum.Enum):
    """Optimization direction of one objective."""

    MIN = "min"
    MAX = "max"


def to_minimization(values: np.ndarray, senses: Sequence[ObjectiveSense]) -> np.ndarray:
    """Flip maximized columns so every objective is minimized."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError(f"expected an (n_points, n_objectives) array, got shape {values.shape}")
    if values.shape[1] != len(senses):
        raise ValueError(f"{values.shape[1]} objective columns but {len(senses)} senses")
    out = values.copy()
    for j, sense in enumerate(senses):
        if sense is ObjectiveSense.MAX:
            out[:, j] = -out[:, j]
    return out


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff minimization-point ``a`` Pareto-dominates ``b``."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b) and np.any(a < b))


def non_dominated_mask(values: np.ndarray, chunk: int = 256) -> np.ndarray:
    """Boolean mask of non-dominated rows (minimization convention).

    Vectorized pairwise comparison processed in row chunks so peak memory
    stays at ``chunk * n * d`` floats.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    mask = np.ones(n, dtype=bool)
    for start in range(0, n, chunk):
        block = values[start : start + chunk]  # (c, d)
        # dominated[i] for i in block: exists j with all<= and any<
        leq = np.all(values[None, :, :] <= block[:, None, :], axis=2)  # (c, n)
        lt = np.any(values[None, :, :] < block[:, None, :], axis=2)
        dominated = np.any(leq & lt, axis=1)
        mask[start : start + chunk] = ~dominated
    return mask


def _front_merge(top: np.ndarray, bottom: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """Indices of ``bottom`` not dominated by any index in ``top``."""
    if top.size == 0 or bottom.size == 0:
        return bottom
    t = vals[top]  # (m, d)
    b = vals[bottom]  # (k, d)
    leq = np.all(t[None, :, :] <= b[:, None, :], axis=2)
    lt = np.any(t[None, :, :] < b[:, None, :], axis=2)
    dominated = np.any(leq & lt, axis=1)
    return bottom[~dominated]


def _kung(indices: np.ndarray, vals: np.ndarray) -> np.ndarray:
    if indices.size <= 1:
        return indices
    half = indices.size // 2
    top = _kung(indices[:half], vals)
    bottom = _kung(indices[half:], vals)
    survivors = _front_merge(top, bottom, vals)
    return np.concatenate([top, survivors])


def non_dominated_mask_kung(values: np.ndarray) -> np.ndarray:
    """Kung's divide-and-conquer front extraction (minimization).

    Rows are lexicographically sorted, halved recursively, and the bottom
    half is filtered against the (already non-dominated) top half.
    """
    values = np.asarray(values, dtype=float)
    n = values.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = np.lexsort(values.T[::-1])  # sort by col 0, then 1, ...
    front = _kung(order, values)
    mask = np.zeros(n, dtype=bool)
    mask[front] = True
    return mask


def pareto_front_indices(
    values: np.ndarray,
    senses: Sequence[ObjectiveSense],
    algorithm: str = "kung",
) -> np.ndarray:
    """Indices of the non-dominated points under the given senses.

    Parameters
    ----------
    values:
        ``(n_points, n_objectives)`` raw objective values.
    senses:
        Direction per objective column.
    algorithm:
        ``"kung"`` (default) or ``"naive"``.
    """
    mins = to_minimization(values, senses)
    if algorithm == "kung":
        mask = non_dominated_mask_kung(mins)
    elif algorithm == "naive":
        mask = non_dominated_mask(mins)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}; use 'kung' or 'naive'")
    return np.flatnonzero(mask)
