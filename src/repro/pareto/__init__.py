"""Multi-objective (Pareto) analysis — paper Section 3.4.

Provides dominance testing and non-dominated set extraction (a vectorized
O(n^2) reference algorithm plus Kung's divide-and-conquer), objective
normalization, and front-quality metrics (hypervolume, crowding distance,
knee points).  The paper's three objectives — maximize accuracy, minimize
latency, minimize memory — are expressed through :class:`ObjectiveSense`
so the algorithms stay sign-agnostic.
"""

from repro.pareto.dominance import (
    ObjectiveSense,
    dominates,
    non_dominated_mask,
    non_dominated_mask_kung,
    pareto_front_indices,
)
from repro.pareto.normalize import normalize_minmax
from repro.pareto.analysis import ParetoAnalysis, ParetoResult
from repro.pareto.metrics import crowding_distance, hypervolume, igd, knee_point_index, spread
from repro.pareto.ranking import (
    epsilon_non_dominated_mask,
    fast_non_dominated_sort,
    weak_non_dominated_mask,
)

__all__ = [
    "fast_non_dominated_sort",
    "weak_non_dominated_mask",
    "epsilon_non_dominated_mask",
    "igd",
    "spread",
    "ObjectiveSense",
    "dominates",
    "non_dominated_mask",
    "non_dominated_mask_kung",
    "pareto_front_indices",
    "normalize_minmax",
    "ParetoAnalysis",
    "ParetoResult",
    "crowding_distance",
    "hypervolume",
    "knee_point_index",
]
