"""High-level Pareto analysis over trial records.

:class:`ParetoAnalysis` wires the paper's three objectives to the
dominance machinery and produces the artifacts the evaluation section
reports: the non-dominated set (Table 4), objective ranges (Table 3) and
normalized values for the figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.pareto.dominance import ObjectiveSense, pareto_front_indices
from repro.pareto.metrics import crowding_distance, hypervolume, knee_point_index
from repro.pareto.normalize import normalize_minmax

__all__ = ["ParetoAnalysis", "ParetoResult", "PAPER_OBJECTIVES"]

#: The paper's objective spec: (record key, sense).
PAPER_OBJECTIVES: tuple[tuple[str, ObjectiveSense], ...] = (
    ("accuracy", ObjectiveSense.MAX),
    ("latency_ms", ObjectiveSense.MIN),
    ("memory_mb", ObjectiveSense.MIN),
)


@dataclass
class ParetoResult:
    """Outcome of a Pareto analysis run."""

    objective_keys: tuple[str, ...]
    values: np.ndarray  # (n, d) raw objective values
    front_indices: np.ndarray  # indices into the record list
    normalized: np.ndarray  # (n, d) min-max normalized values

    @property
    def front_values(self) -> np.ndarray:
        """Raw objective values of the non-dominated points."""
        return self.values[self.front_indices]

    def ranges(self) -> dict[str, tuple[float, float]]:
        """Per-objective (min, max) over all points (paper Table 3)."""
        return {
            key: (float(self.values[:, j].min()), float(self.values[:, j].max()))
            for j, key in enumerate(self.objective_keys)
        }

    def front_size(self) -> int:
        """Number of non-dominated solutions."""
        return int(self.front_indices.size)


class ParetoAnalysis:
    """Extracts the Pareto front from objective records.

    Parameters
    ----------
    objectives:
        ``(record key, sense)`` pairs; defaults to the paper's
        accuracy/latency/memory triple.
    algorithm:
        Front-extraction algorithm (``"kung"`` or ``"naive"``).
    """

    def __init__(
        self,
        objectives: Sequence[tuple[str, ObjectiveSense]] = PAPER_OBJECTIVES,
        algorithm: str = "kung",
    ) -> None:
        if not objectives:
            raise ValueError("at least one objective is required")
        self.objectives = tuple(objectives)
        self.algorithm = algorithm

    def extract_values(self, records: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Collect the objective matrix from record dicts."""
        if not records:
            raise ValueError("no records to analyze")
        keys = [key for key, _ in self.objectives]
        try:
            return np.array([[float(rec[key]) for key in keys] for rec in records])
        except KeyError as exc:
            raise KeyError(f"record is missing objective key {exc}") from None

    def run(self, records: Sequence[Mapping[str, Any]]) -> ParetoResult:
        """Full analysis: front extraction + normalization."""
        values = self.extract_values(records)
        senses = [sense for _, sense in self.objectives]
        front = pareto_front_indices(values, senses, algorithm=self.algorithm)
        return ParetoResult(
            objective_keys=tuple(key for key, _ in self.objectives),
            values=values,
            front_indices=front,
            normalized=normalize_minmax(values),
        )

    def front_records(self, records: Sequence[Mapping[str, Any]]) -> list[Mapping[str, Any]]:
        """The non-dominated records themselves, in input order."""
        result = self.run(records)
        return [records[i] for i in result.front_indices]

    def hypervolume(self, records: Sequence[Mapping[str, Any]], margin: float = 0.1) -> float:
        """Normalized hypervolume of the front w.r.t. a (1+margin) reference."""
        result = self.run(records)
        senses = [sense for _, sense in self.objectives]
        mins = result.normalized.copy()
        for j, sense in enumerate(senses):
            if sense is ObjectiveSense.MAX:
                mins[:, j] = 1.0 - mins[:, j]
        ref = np.full(mins.shape[1], 1.0 + margin)
        return hypervolume(mins[result.front_indices], ref)

    def knee_record(self, records: Sequence[Mapping[str, Any]]) -> Mapping[str, Any]:
        """The balanced-tradeoff (knee) solution on the front."""
        result = self.run(records)
        senses = [sense for _, sense in self.objectives]
        front_norm = result.normalized[result.front_indices].copy()
        for j, sense in enumerate(senses):
            if sense is ObjectiveSense.MAX:
                front_norm[:, j] = 1.0 - front_norm[:, j]
        knee = knee_point_index(front_norm)
        return records[result.front_indices[knee]]

    def crowding(self, records: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Crowding distances of the front points."""
        result = self.run(records)
        return crowding_distance(result.normalized[result.front_indices])
