"""Objective normalization (the paper normalizes Figure 3/4 axes)."""

from __future__ import annotations

import numpy as np

__all__ = ["normalize_minmax"]


def normalize_minmax(values: np.ndarray, axis: int = 0) -> np.ndarray:
    """Min-max normalize to [0, 1] along ``axis``.

    Constant columns map to 0.5 (the paper's radar plots need a defined
    position even when every Pareto solution shares a value, e.g. memory).
    """
    values = np.asarray(values, dtype=float)
    lo = values.min(axis=axis, keepdims=True)
    hi = values.max(axis=axis, keepdims=True)
    span = hi - lo
    out = np.where(span > 0, (values - lo) / np.where(span > 0, span, 1.0), 0.5)
    return out
