"""Front-quality metrics: hypervolume, crowding distance, knee points.

These go beyond the paper's analysis (which stops at front extraction) and
support the ablation benches: hypervolume quantifies how much front quality
a pruned search space gives up.
"""

from __future__ import annotations

import numpy as np

from repro.pareto.dominance import non_dominated_mask

__all__ = ["hypervolume", "crowding_distance", "knee_point_index", "igd", "spread"]


def _hv2d(points: np.ndarray, ref: np.ndarray) -> float:
    """Exact 2-D hypervolume (minimization) by a sorted sweep."""
    pts = points[np.argsort(points[:, 0])]
    volume = 0.0
    prev_y = ref[1]
    for x, y in pts:
        if y < prev_y:
            volume += (ref[0] - x) * (prev_y - y)
            prev_y = y
    return volume


def hypervolume(points: np.ndarray, reference: np.ndarray) -> float:
    """Dominated hypervolume of a point set (minimization convention).

    Supports 1-3 objectives; 3-D uses the slicing method: sweep the third
    coordinate, accumulating 2-D volumes of the active non-dominated slice.
    Points outside the reference box are ignored.
    """
    points = np.asarray(points, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if points.ndim != 2 or points.shape[1] != reference.shape[0]:
        raise ValueError("points must be (n, d) with reference of length d")
    inside = np.all(points < reference, axis=1)
    points = points[inside]
    if points.shape[0] == 0:
        return 0.0
    points = points[non_dominated_mask(points)]
    d = points.shape[1]
    if d == 1:
        return float(reference[0] - points.min())
    if d == 2:
        return float(_hv2d(points, reference))
    if d != 3:
        raise ValueError(f"hypervolume implemented for d <= 3, got d={d}")

    # Slice along z: between consecutive z levels the dominated area in
    # (x, y) is that of all points with smaller-or-equal z.
    order = np.argsort(points[:, 2])
    zs = points[order, 2]
    volume = 0.0
    for i, idx in enumerate(order):
        z_lo = zs[i]
        z_hi = zs[i + 1] if i + 1 < len(zs) else reference[2]
        if z_hi <= z_lo:
            continue
        active = points[order[: i + 1], :2]
        active = active[non_dominated_mask(active)]
        volume += _hv2d(active, reference[:2]) * (z_hi - z_lo)
    return float(volume)


def crowding_distance(points: np.ndarray) -> np.ndarray:
    """NSGA-II crowding distance of each point within its front.

    Boundary points get ``inf``; interior points get the normalized side
    length of the cuboid spanned by their nearest neighbors per objective.
    """
    points = np.asarray(points, dtype=float)
    n, d = points.shape
    if n <= 2:
        return np.full(n, np.inf)
    distance = np.zeros(n)
    for j in range(d):
        order = np.argsort(points[:, j], kind="stable")
        col = points[order, j]
        span = col[-1] - col[0]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if span > 0:
            distance[order[1:-1]] += (col[2:] - col[:-2]) / span
    return distance


def igd(front: np.ndarray, reference_front: np.ndarray) -> float:
    """Inverted generational distance: how well ``front`` covers a reference.

    Mean Euclidean distance from each reference point to its nearest
    member of ``front``; 0 means the reference front is fully covered.
    Used by the search-strategy benches to score budget-limited fronts
    against the exhaustive grid's front.
    """
    front = np.asarray(front, dtype=float)
    reference_front = np.asarray(reference_front, dtype=float)
    if front.size == 0:
        raise ValueError("empty candidate front")
    if reference_front.size == 0:
        raise ValueError("empty reference front")
    distances = np.linalg.norm(reference_front[:, None, :] - front[None, :, :], axis=2)
    return float(distances.min(axis=1).mean())


def spread(points: np.ndarray) -> float:
    """Front diversity: mean absolute deviation of consecutive gaps.

    Points are ordered along their first objective; 0 means perfectly
    uniform spacing (Deb's delta metric without the boundary terms).
    """
    points = np.asarray(points, dtype=float)
    if points.shape[0] < 3:
        return 0.0
    ordered = points[np.argsort(points[:, 0])]
    gaps = np.linalg.norm(np.diff(ordered, axis=0), axis=1)
    mean_gap = gaps.mean()
    if mean_gap == 0:
        return 0.0
    return float(np.abs(gaps - mean_gap).mean() / mean_gap)


def knee_point_index(points: np.ndarray) -> int:
    """Index of the knee: the point closest to the normalized ideal.

    With all objectives minimized and min-max normalized, the ideal is the
    origin; the knee is the front point with the smallest Euclidean norm —
    the configuration a decision-maker with balanced preferences picks.
    """
    points = np.asarray(points, dtype=float)
    if points.shape[0] == 0:
        raise ValueError("empty point set has no knee")
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    norm = (points - lo) / span
    return int(np.argmin(np.linalg.norm(norm, axis=1)))
