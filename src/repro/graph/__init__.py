"""Model intermediate representation.

A traced model becomes a :class:`~repro.graph.ir.Graph` — a networkx-backed
DAG of operator nodes annotated with shapes, parameter counts and FLOPs.
The latency predictors (:mod:`repro.latency`) and the ONNX-style exporter
(:mod:`repro.onnxlite`) both consume this IR, exactly as nn-Meter and ONNX
consume a traced PyTorch model in the paper's pipeline.
"""

from repro.graph.ir import Graph, Node, OpType
from repro.graph.trace import trace_model
from repro.graph.shapes import conv_out_hw, pool_out_hw
from repro.graph.flops import count_graph_flops, node_flops

__all__ = [
    "Graph",
    "Node",
    "OpType",
    "trace_model",
    "conv_out_hw",
    "pool_out_hw",
    "count_graph_flops",
    "node_flops",
]
