"""FLOP accounting per IR node (multiply-add counted as 2 FLOPs)."""

from __future__ import annotations

from repro.graph.ir import Graph, Node, OpType

__all__ = ["node_flops", "count_graph_flops"]


def _numel(shape: tuple[int, ...]) -> int:
    n = 1
    for d in shape:
        n *= d
    return n


def node_flops(node: Node) -> int:
    """FLOPs for a single-sample forward pass through ``node``."""
    if node.op is OpType.CONV:
        c_out, oh, ow = node.out_shape
        c_in = node.attrs["in_channels"]
        k = node.attrs["kernel"]
        return 2 * c_in * k * k * c_out * oh * ow
    if node.op is OpType.FC:
        return 2 * node.attrs["in_features"] * node.attrs["out_features"]
    if node.op is OpType.BATCH_NORM:
        # scale + shift per element (inference form: mean/var are folded)
        return 2 * _numel(node.out_shape)
    if node.op in (OpType.RELU, OpType.ADD):
        return _numel(node.out_shape)
    if node.op is OpType.MAX_POOL:
        k = node.attrs["kernel"]
        return k * k * _numel(node.out_shape)
    if node.op is OpType.GLOBAL_AVG_POOL:
        return _numel(node.in_shape)
    return 0  # INPUT / OUTPUT / FLATTEN move data, no arithmetic


def count_graph_flops(graph: Graph) -> int:
    """Total forward-pass FLOPs of a traced model (batch size 1)."""
    return sum(node_flops(node) for node in graph.nodes())
