"""Shape arithmetic shared by the tracer, exporter and latency predictors."""

from __future__ import annotations

__all__ = ["conv_out_hw", "pool_out_hw"]


def conv_out_hw(hw: tuple[int, int], kernel: int, stride: int, padding: int) -> tuple[int, int]:
    """Output (H, W) of a convolution; raises if the map collapses."""
    h, w = hw
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError(
            f"convolution collapses {h}x{w} with kernel={kernel} stride={stride} padding={padding}"
        )
    return out_h, out_w


def pool_out_hw(hw: tuple[int, int], kernel: int, stride: int) -> tuple[int, int]:
    """Output (H, W) of an unpadded pooling window; raises if it collapses."""
    h, w = hw
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError(f"pooling collapses {h}x{w} with kernel={kernel} stride={stride}")
    return out_h, out_w
