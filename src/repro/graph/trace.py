"""Build the graph IR from a model, the way ONNX export traces PyTorch.

The tracer walks the module tree with a dispatch table over the layer
vocabulary of :mod:`repro.nn`, threading symbolic ``(C, H, W)`` shapes
through each operator.  Residual blocks produce explicit ADD nodes with the
correct two-producer fan-in, so kernel fusion and latency prediction see
the true dataflow.
"""

from __future__ import annotations

from repro.graph.ir import Graph, Node, OpType
from repro.graph.shapes import conv_out_hw, pool_out_hw
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.module import Module, Sequential
from repro.nn.resnet import BasicBlock, SearchableResNet18

__all__ = ["trace_model"]


class _Tracer:
    """Stateful helper threading (shape, last-node) through the module walk."""

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._counter = 0

    def fresh(self, base: str) -> str:
        self._counter += 1
        return f"{base}#{self._counter}"

    def emit(self, name: str, op: OpType, in_shape, out_shape, prev: Node, attrs=None, params=0) -> Node:
        node = self.graph.add_node(
            Node(name=name, op=op, in_shape=in_shape, out_shape=out_shape, attrs=attrs or {}, params=params)
        )
        self.graph.add_edge(prev, node)
        return node

    # -- per-layer handlers -------------------------------------------------------

    def trace(self, module: Module, prev: Node, prefix: str) -> Node:
        """Dispatch on module type; returns the new tail node."""
        if isinstance(module, Conv2d):
            return self._conv(module, prev, prefix)
        if isinstance(module, BatchNorm2d):
            c = prev.out_shape[0]
            return self.emit(prefix, OpType.BATCH_NORM, prev.out_shape, prev.out_shape, prev,
                             attrs={"channels": c}, params=2 * c)
        if isinstance(module, ReLU):
            return self.emit(prefix, OpType.RELU, prev.out_shape, prev.out_shape, prev)
        if isinstance(module, MaxPool2d):
            c, h, w = prev.out_shape
            oh, ow = pool_out_hw((h, w), module.kernel_size, module.stride)
            return self.emit(prefix, OpType.MAX_POOL, prev.out_shape, (c, oh, ow), prev,
                             attrs={"kernel": module.kernel_size, "stride": module.stride})
        if isinstance(module, AvgPool2d):
            c, h, w = prev.out_shape
            oh, ow = pool_out_hw((h, w), module.kernel_size, module.stride)
            return self.emit(prefix, OpType.MAX_POOL, prev.out_shape, (c, oh, ow), prev,
                             attrs={"kernel": module.kernel_size, "stride": module.stride, "average": True})
        if isinstance(module, GlobalAvgPool2d):
            c = prev.out_shape[0]
            return self.emit(prefix, OpType.GLOBAL_AVG_POOL, prev.out_shape, (c,), prev)
        if isinstance(module, Flatten):
            flat = 1
            for d in prev.out_shape:
                flat *= d
            return self.emit(prefix, OpType.FLATTEN, prev.out_shape, (flat,), prev)
        if isinstance(module, Linear):
            params = module.weight.size + (module.bias.size if module.bias is not None else 0)
            return self.emit(prefix, OpType.FC, prev.out_shape, (module.out_features,), prev,
                             attrs={"in_features": module.in_features, "out_features": module.out_features},
                             params=params)
        if isinstance(module, Identity):
            return prev
        if isinstance(module, Sequential):
            for name, child in module._modules.items():
                prev = self.trace(child, prev, f"{prefix}.{name}")
            return prev
        if isinstance(module, BasicBlock):
            return self._basic_block(module, prev, prefix)
        raise TypeError(f"tracer does not know how to handle {type(module).__name__}")

    def _conv(self, module: Conv2d, prev: Node, prefix: str) -> Node:
        c, h, w = prev.out_shape
        if c != module.in_channels:
            raise ValueError(f"{prefix}: conv expects {module.in_channels} channels, got {c}")
        oh, ow = conv_out_hw((h, w), module.kernel_size, module.stride, module.padding)
        params = module.weight.size + (module.bias.size if module.bias is not None else 0)
        return self.emit(
            prefix,
            OpType.CONV,
            prev.out_shape,
            (module.out_channels, oh, ow),
            prev,
            attrs={
                "in_channels": module.in_channels,
                "out_channels": module.out_channels,
                "kernel": module.kernel_size,
                "stride": module.stride,
                "padding": module.padding,
            },
            params=params,
        )

    def _basic_block(self, block: BasicBlock, prev: Node, prefix: str) -> Node:
        main = self.trace(block.conv1, prev, f"{prefix}.conv1")
        main = self.trace(block.bn1, main, f"{prefix}.bn1")
        main = self.emit(f"{prefix}.relu1", OpType.RELU, main.out_shape, main.out_shape, main)
        main = self.trace(block.conv2, main, f"{prefix}.conv2")
        main = self.trace(block.bn2, main, f"{prefix}.bn2")

        skip = self.trace(block.downsample, prev, f"{prefix}.downsample")

        add = self.graph.add_node(
            Node(name=f"{prefix}.add", op=OpType.ADD, in_shape=main.out_shape, out_shape=main.out_shape)
        )
        self.graph.add_edge(main, add)
        self.graph.add_edge(skip, add)
        return self.emit(f"{prefix}.relu2", OpType.RELU, add.out_shape, add.out_shape, add)


def trace_model(model: SearchableResNet18, input_hw: tuple[int, int] = (100, 100)) -> Graph:
    """Trace a searchable ResNet into the graph IR.

    Parameters
    ----------
    model:
        The model to trace.
    input_hw:
        Spatial size of the input patch; the paper's drainage-crossing
        patches are 100x100 at 1 m resolution.

    Returns
    -------
    Graph
        A validated IR whose total parameter count equals the model's.
    """
    graph = Graph()
    tracer = _Tracer(graph)
    h, w = input_hw
    inp = graph.add_node(
        Node(name="input", op=OpType.INPUT, in_shape=(model.in_channels, h, w),
             out_shape=(model.in_channels, h, w))
    )
    tail = tracer.trace(model.conv1, inp, "conv1")
    tail = tracer.trace(model.bn1, tail, "bn1")
    tail = tracer.emit("relu1", OpType.RELU, tail.out_shape, tail.out_shape, tail)
    tail = tracer.trace(model.maxpool, tail, "maxpool")
    for stage_idx in range(1, 5):
        stage = getattr(model, f"layer{stage_idx}")
        tail = tracer.trace(stage, tail, f"layer{stage_idx}")
    tail = tracer.trace(model.avgpool, tail, "avgpool")
    tail = tracer.trace(model.fc, tail, "fc")
    out = graph.add_node(Node(name="output", op=OpType.OUTPUT, in_shape=tail.out_shape, out_shape=tail.out_shape))
    graph.add_edge(tail, out)
    graph.validate()
    return graph
