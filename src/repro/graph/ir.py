"""Graph IR: typed operator nodes in a networkx DAG."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

import networkx as nx

__all__ = ["OpType", "Node", "Graph"]


class OpType(str, enum.Enum):
    """Operator vocabulary of the IR (the ops ResNet-18 variants use)."""

    INPUT = "input"
    CONV = "conv"
    BATCH_NORM = "batch_norm"
    RELU = "relu"
    MAX_POOL = "max_pool"
    GLOBAL_AVG_POOL = "global_avg_pool"
    FLATTEN = "flatten"
    FC = "fc"
    ADD = "add"
    OUTPUT = "output"


@dataclass
class Node:
    """One operator in the IR.

    Attributes
    ----------
    name:
        Unique node name (qualified module path, e.g. ``layer2.0.conv1``).
    op:
        Operator type.
    in_shape / out_shape:
        Data shapes excluding the batch dimension — ``(C, H, W)`` for
        spatial tensors, ``(F,)`` after flattening.
    attrs:
        Operator attributes (kernel, stride, padding, channels, ...).
    params:
        Number of trainable scalars owned by the op.
    """

    name: str
    op: OpType
    in_shape: tuple[int, ...]
    out_shape: tuple[int, ...]
    attrs: dict[str, Any] = field(default_factory=dict)
    params: int = 0

    def __post_init__(self) -> None:
        self.in_shape = tuple(int(d) for d in self.in_shape)
        self.out_shape = tuple(int(d) for d in self.out_shape)
        for dim in self.in_shape + self.out_shape:
            if dim < 1:
                raise ValueError(f"node {self.name!r} has a non-positive dimension: "
                                 f"in={self.in_shape} out={self.out_shape}")


class Graph:
    """An operator DAG with topological iteration and validation.

    Nodes are :class:`Node` objects; edges carry data-flow direction.
    """

    def __init__(self) -> None:
        self._g = nx.DiGraph()

    # -- construction ------------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Insert a node; names must be unique."""
        if node.name in self._g:
            raise ValueError(f"duplicate node name {node.name!r}")
        self._g.add_node(node.name, node=node)
        return node

    def add_edge(self, src: Node | str, dst: Node | str) -> None:
        """Connect producer ``src`` to consumer ``dst``."""
        src_name = src.name if isinstance(src, Node) else src
        dst_name = dst.name if isinstance(dst, Node) else dst
        for name in (src_name, dst_name):
            if name not in self._g:
                raise KeyError(f"unknown node {name!r}")
        self._g.add_edge(src_name, dst_name)

    # -- access -------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._g

    def __len__(self) -> int:
        return self._g.number_of_nodes()

    def node(self, name: str) -> Node:
        """Look up a node by name."""
        return self._g.nodes[name]["node"]

    def nodes(self) -> Iterator[Node]:
        """All nodes in insertion order."""
        for name in self._g.nodes:
            yield self._g.nodes[name]["node"]

    def topological(self) -> list[Node]:
        """Nodes in a topological order (raises on cycles)."""
        return [self._g.nodes[name]["node"] for name in nx.topological_sort(self._g)]

    def predecessors(self, node: Node | str) -> list[Node]:
        """Producer nodes feeding ``node``."""
        name = node.name if isinstance(node, Node) else node
        return [self._g.nodes[p]["node"] for p in self._g.predecessors(name)]

    def successors(self, node: Node | str) -> list[Node]:
        """Consumer nodes fed by ``node``."""
        name = node.name if isinstance(node, Node) else node
        return [self._g.nodes[s]["node"] for s in self._g.successors(name)]

    def ops(self, op: OpType) -> list[Node]:
        """All nodes of a given operator type."""
        return [n for n in self.nodes() if n.op is op]

    @property
    def nx(self) -> nx.DiGraph:
        """The underlying networkx graph (read-only by convention)."""
        return self._g

    # -- derived quantities ----------------------------------------------------------

    def total_params(self) -> int:
        """Sum of parameters over all nodes."""
        return sum(n.params for n in self.nodes())

    def validate(self) -> None:
        """Check the IR is a connected DAG with consistent shapes.

        Raises ``ValueError`` on: cycles, dangling non-IO nodes, or an edge
        whose producer output shape disagrees with the consumer input shape
        (ADD nodes compare against each producer individually).
        """
        if not nx.is_directed_acyclic_graph(self._g):
            raise ValueError("graph contains a cycle")
        for node in self.nodes():
            preds = self.predecessors(node)
            succs = self.successors(node)
            if node.op is not OpType.INPUT and not preds:
                raise ValueError(f"non-input node {node.name!r} has no producers")
            if node.op is not OpType.OUTPUT and not succs:
                raise ValueError(f"non-output node {node.name!r} has no consumers")
            for pred in preds:
                if pred.out_shape != node.in_shape:
                    raise ValueError(
                        f"shape mismatch on edge {pred.name!r} -> {node.name!r}: "
                        f"{pred.out_shape} != {node.in_shape}"
                    )

    def __repr__(self) -> str:
        return f"Graph(nodes={len(self)}, edges={self._g.number_of_edges()})"
