"""Ablation — search-strategy comparison (grid vs random vs evolution).

The paper runs the exhaustive grid; NNI's other standard strategies are
the natural budget-limited alternatives its Discussion points toward.
This bench compares how much of the grid's best accuracy each strategy
recovers under a 200-trial budget, and benchmarks proposal generation.
"""

from repro.nas import Experiment, GridSearch, RandomSearch, RegularizedEvolution, SurrogateEvaluator
from repro.nas.searchspace import DEFAULT_SPACE
from repro.utils.tables import render_table

_BUDGET = 200


def _best_accuracy(strategy) -> float:
    experiment = Experiment(
        evaluator=SurrogateEvaluator(seed=0),
        strategy=strategy,
        input_hw=(100, 100),
    )
    result = experiment.run(budget=_BUDGET)
    return result.store.best_by_accuracy().accuracy


def test_ablation_search_strategies(benchmark, paper_sweep):
    grid_best_full = paper_sweep.store.best_by_accuracy().accuracy

    results = {
        "grid (first 200 of 1,728)": _best_accuracy(GridSearch(DEFAULT_SPACE)),
        "random (200)": _best_accuracy(RandomSearch(DEFAULT_SPACE, seed=1)),
        "evolution (200)": _best_accuracy(
            RegularizedEvolution(DEFAULT_SPACE, population_size=24, tournament_size=8, seed=1)
        ),
    }
    rows = [
        {"strategy": name, "best_accuracy": round(acc, 2),
         "gap_to_full_grid": round(grid_best_full - acc, 2)}
        for name, acc in results.items()
    ]
    print()
    print(render_table(rows, title=f"Ablation — best accuracy under a {_BUDGET}-trial budget "
                                   f"(full grid best: {grid_best_full:.2f})"))

    # Adaptive strategies close most of the gap the truncated grid leaves.
    assert results["evolution (200)"] >= results["grid (first 200 of 1,728)"]
    assert results["evolution (200)"] >= grid_best_full - 1.5
    assert results["random (200)"] >= grid_best_full - 3.0

    def propose_batch():
        return list(RandomSearch(DEFAULT_SPACE, seed=2).propose(_BUDGET))

    configs = benchmark(propose_batch)
    assert len(configs) == _BUDGET
