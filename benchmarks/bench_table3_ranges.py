"""Table 3 — objective value ranges over the valid sweep outcomes.

Reproduces the min/max of all three objectives over the 1,717 valid
trials and benchmarks the 3-objective Pareto analysis itself.
"""

from repro.core.paper import TABLE3_RANGES, TOTAL_TRIALS, VALID_OUTCOMES
from repro.core.report import objective_ranges_table
from repro.pareto import ParetoAnalysis
from repro.utils.tables import render_table


def test_table3_objective_ranges(benchmark, paper_sweep):
    assert paper_sweep.launched == TOTAL_TRIALS
    assert paper_sweep.valid_outcomes == VALID_OUTCOMES

    ranges = paper_sweep.pareto.ranges()
    rows = []
    for key, (paper_lo, paper_hi) in TABLE3_RANGES.items():
        lo, hi = ranges[key]
        rows.append({"objective": key, "min": round(lo, 2), "max": round(hi, 2),
                     "paper_min": paper_lo, "paper_max": paper_hi})
    print()
    print(render_table(rows, title="Table 3 — objective value ranges (ours vs paper)"))

    acc_lo, acc_hi = ranges["accuracy"]
    lat_lo, lat_hi = ranges["latency_ms"]
    mem_lo, mem_hi = ranges["memory_mb"]
    # Accuracy range: high-90s top, mid/high-70s bottom.
    assert abs(acc_hi - 96.13) < 1.5
    assert abs(acc_lo - 76.19) < 3.0
    # Latency range: winners ~8 ms, worst case ~250 ms.
    assert abs(lat_lo - 8.13) < 1.0
    assert abs(lat_hi - 249.56) / 249.56 < 0.10
    # Memory range: exactly the f=32 vs f=64 parameter footprints.
    assert abs(mem_lo - 11.18) < 0.1
    assert abs(mem_hi - 44.69) < 0.2

    # Benchmark: full 3-objective analysis over all 1,717 records.
    analysis = ParetoAnalysis()
    records = paper_sweep.records
    result = benchmark(analysis.run, records)
    assert result.front_size() >= 1
