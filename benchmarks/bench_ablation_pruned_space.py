"""Discussion (2) — search-space pruning ablation.

The paper suggests "confining the padding size to 1" to shrink the grid.
This bench runs the pruned sweep (padding=1 only: 576 trials instead of
1,728), verifies the Pareto front is preserved (every winner already uses
padding=1), quantifies the saved trial budget, and benchmarks front
extraction on the pruned result set.
"""

from repro.core.pipeline import HwNasPipeline
from repro.nas import FailureInjector, GridSearch, SurrogateEvaluator
from repro.nas.searchspace import SearchSpace
from repro.pareto import ParetoAnalysis
from repro.utils.tables import render_table


def test_ablation_padding_pruned_space(benchmark, paper_sweep):
    pruned_space = SearchSpace(padding=(1,))
    assert pruned_space.total_configurations() == 576

    pipeline = HwNasPipeline(
        evaluator=SurrogateEvaluator(seed=0),
        space=pruned_space,
        strategy=GridSearch(pruned_space),
        failure_injector=FailureInjector.none(),
    )
    pruned = pipeline.run()

    full_front = paper_sweep.front_records()
    pruned_front = pruned.front_records()
    print()
    rows = [
        {"space": "full (Fig. 2)", "trials": paper_sweep.launched,
         "front_size": len(full_front), "best_acc": round(full_front[0]["accuracy"], 2)},
        {"space": "padding=1 pruned", "trials": pruned.launched,
         "front_size": len(pruned_front), "best_acc": round(pruned_front[0]["accuracy"], 2)},
    ]
    print(render_table(rows, title="Discussion — padding=1 pruning ablation"))

    # The pruning is lossless for the front: all winners use padding=1...
    assert all(r["padding"] == 1 for r in full_front)
    # ...so the pruned search finds the same best architecture family.
    assert pruned_front[0]["accuracy"] >= full_front[0]["accuracy"] - 0.01
    assert pruned_front[0]["initial_output_feature"] == 32
    assert pruned_front[0]["kernel_size"] == 3
    # And saves 2/3 of the trial budget.
    assert pruned.launched * 3 == paper_sweep.launched

    # Hypervolume of the pruned front matches the full front's.
    analysis = ParetoAnalysis()
    hv_full = analysis.hypervolume(paper_sweep.records)
    hv_pruned = analysis.hypervolume(pruned.records)
    assert hv_pruned >= 0.95 * hv_full

    result = benchmark(analysis.run, pruned.records)
    assert result.front_size() >= 1
