"""Table 2 — hardware performance comparison of the latency predictors.

Reproduces the +-10% accuracy statistic by validating each predictor
against simulated on-device measurements over a set of search-space
architectures, and benchmarks single-model latency prediction.
"""

import numpy as np

from repro.core.paper import TABLE2_PREDICTORS
from repro.graph.trace import trace_model
from repro.latency import DEVICE_PROFILES, extract_kernels, get_predictor
from repro.latency.devices import kernel_latency_ms
from repro.latency.predictors import simulate_measurement
from repro.nas.searchspace import DEFAULT_SPACE
from repro.nn.resnet import build_model
from repro.utils.tables import render_table

_VALIDATION_MODELS = 40
_MEASUREMENTS_PER_MODEL = 25


def _sample_kernel_lists():
    rng = np.random.default_rng(0)
    configs = DEFAULT_SPACE.sample(rng, _VALIDATION_MODELS)
    return [extract_kernels(trace_model(build_model(c), input_hw=(100, 100))) for c in configs]


def test_table2_pm10_accuracy(benchmark):
    kernel_lists = _sample_kernel_lists()
    rng = np.random.default_rng(42)
    rows = []
    paper = {r["hardware_name"]: r for r in TABLE2_PREDICTORS}
    for name, profile in DEVICE_PROFILES.items():
        within = 0
        total = 0
        for kernels in kernel_lists:
            predicted = sum(kernel_latency_ms(k, profile) for k in kernels)
            for _ in range(_MEASUREMENTS_PER_MODEL):
                measured = simulate_measurement(predicted, profile, rng)
                total += 1
                if abs(predicted - measured) / measured <= 0.10:
                    within += 1
        accuracy = 100.0 * within / total
        rows.append(
            {
                "hardware_name": name,
                "device": profile.device,
                "framework": profile.framework,
                "processor": profile.processor,
                "pm10_accuracy": round(accuracy, 2),
                "paper": paper[name]["accuracy"],
            }
        )
        assert abs(accuracy - paper[name]["accuracy"]) < 4.0
    # Shape assertion: the VPU is clearly the least predictable device.
    by_name = {r["hardware_name"]: r["pm10_accuracy"] for r in rows}
    assert by_name["myriadvpu"] < min(v for k, v in by_name.items() if k != "myriadvpu") - 5.0
    print()
    print(render_table(rows, title="Table 2 — predictor +-10% accuracy (ours vs paper)"))

    # Benchmark: one full-model latency prediction on the mobile CPU.
    predictor = get_predictor("cortexA76cpu")
    kernels = kernel_lists[0]

    def predict():
        return sum(kernel_latency_ms(k, predictor.profile) for k in kernels)

    latency = benchmark(predict)
    assert latency > 0
