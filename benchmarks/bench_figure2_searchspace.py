"""Figure 2 — the NNI search space.

Regenerates the knob/choice structure, the 288-per-combination and
1,728-total cardinalities, and the no-pool uniqueness accounting, and
benchmarks full grid enumeration.
"""

from repro.core.figures import searchspace_figure
from repro.core.paper import CONFIGS_PER_COMBINATION, TOTAL_TRIALS
from repro.nas.searchspace import DEFAULT_SPACE
from repro.utils.tables import render_table


def test_figure2_search_space(benchmark):
    fig = searchspace_figure()
    rows = [{"knob": k, "choices": str(v)} for k, v in fig["knobs"].items()]
    print()
    print(render_table(rows, title="Figure 2 — search-space knobs"))
    print(f"architectures per input combination: {fig['architectures_per_combination']} (paper: 288)")
    print(f"unique architectures per combination: {fig['unique_architectures_per_combination']}")
    print(f"total configurations: {fig['total_configurations']} (paper launches: 1,728)")

    assert fig["architectures_per_combination"] == CONFIGS_PER_COMBINATION
    assert fig["total_configurations"] == TOTAL_TRIALS
    assert len(fig["input_combinations"]) == 6
    # Section 3.2's coincidence note: 288 raw -> 180 distinct networks.
    assert fig["unique_architectures_per_combination"] == 180

    configs = benchmark(DEFAULT_SPACE.configs)
    assert len(configs) == TOTAL_TRIALS
    assert len({c.architecture_key() for c in configs}) == 2 * 180
