"""Ablation — dominance-definition sensitivity of Table 4's membership.

EXPERIMENTS.md documents that the paper's Table-4 rows 3/5 are dominated
by rows 1/4 under the standard Pareto definition applied to the paper's
own values (equal memory, worse accuracy and latency).  This bench
quantifies how the front of *our* sweep changes across dominance
relations — standard, weak (strict-in-all-objectives elimination), and
additive epsilon-dominance — and verifies the paper's five reported rows
behave exactly as predicted under each relation.
"""

import numpy as np

from repro.core.paper import TABLE4_PARETO
from repro.pareto import (
    epsilon_non_dominated_mask,
    non_dominated_mask,
    weak_non_dominated_mask,
)
from repro.utils.tables import render_table


def _to_min(records):
    return np.array([[-r["accuracy"], r["latency_ms"], r["memory_mb"]] for r in records])


def test_ablation_dominance_definitions(benchmark, paper_sweep):
    values = _to_min(paper_sweep.records)
    standard = non_dominated_mask(values)
    weak = weak_non_dominated_mask(values)
    eps = epsilon_non_dominated_mask(values, np.array([0.25, 0.5, 0.05]))

    rows = [
        {"relation": "standard (all<=, any<)", "front_size": int(standard.sum())},
        {"relation": "weak (all< eliminates)", "front_size": int(weak.sum())},
        {"relation": "epsilon (0.25%, 0.5ms, 0.05MB)", "front_size": int(eps.sum())},
    ]
    print()
    print(render_table(rows, title="Ablation — front size under different dominance relations"))

    # Weak dominance always yields a superset.
    assert np.all(weak[standard])
    assert weak.sum() >= standard.sum()
    # Epsilon-dominance thins the standard front (or ties it).
    assert eps.sum() <= weak.sum()

    # The paper's own Table-4 rows at published (2-decimal) precision:
    # row 2 is dominated by row 1 (its survival requires the ch5 model's
    # sub-0.01 MB memory advantage, lost to rounding), and rows 3/5 are
    # dominated by rows 1/4 outright; all five are *weakly* non-dominated.
    paper_values = _to_min(TABLE4_PARETO)
    paper_standard = non_dominated_mask(paper_values)
    paper_weak = weak_non_dominated_mask(paper_values)
    assert paper_standard.tolist() == [True, False, False, True, False]
    assert paper_weak.tolist() == [True, True, True, True, True]
    print("paper Table-4 rows under standard dominance:", paper_standard.tolist())
    print("paper Table-4 rows under weak dominance:    ", paper_weak.tolist())

    mask = benchmark(weak_non_dominated_mask, values)
    assert mask.sum() == weak.sum()
