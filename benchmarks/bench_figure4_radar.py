"""Figure 4 — radar plots of the non-dominated solutions.

Regenerates the normalized per-axis polygons (objectives + configuration
knobs) for every front member, with the paper's pooled/unpooled
grouping, and benchmarks radar-data construction.
"""

from repro.core.figures import radar_figure
from repro.utils.tables import render_table


def test_figure4_radar_data(benchmark, paper_sweep):
    solutions = radar_figure(paper_sweep)
    print()
    rows = []
    for sol in solutions:
        row = {"solution": sol.label, "group": "pool" if sol.pooled else "no-pool"}
        row.update({axis: round(v, 2) for axis, v in zip(sol.axes, sol.values)})
        rows.append(row)
    print(render_table(rows, title="Figure 4 — radar axes per non-dominated solution"))

    assert solutions
    axes = solutions[0].axes
    assert axes[:3] == ["accuracy", "latency_ms", "memory_mb"]
    assert "kernel_size" in axes and "initial_output_feature" in axes

    # The paper's common traits normalize to constant axes across winners:
    # identical kernel/stride/padding/width -> 0.5 after min-max.
    for axis in ("kernel_size", "stride", "padding", "initial_output_feature"):
        idx = axes.index(axis)
        values = {round(sol.values[idx], 6) for sol in solutions}
        assert len(values) == 1, f"{axis} should be shared by all winners"

    result = benchmark(radar_figure, paper_sweep)
    assert len(result) == len(solutions)
