"""Substrate performance benchmarks (pytest-benchmark timings only).

These cover the hot paths the reproduction rests on: im2col convolution
forward/backward, full-model inference (training stack, interpreted
deploy runtime, and compiled inference plan), onnxlite export, 4-device
latency prediction, front extraction at scale, and dataset synthesis.

Per the repo convention, assertions capture the qualitative *shape* of
the result (orderings, ratios) with documented tolerances, never exact
wall-clock values.
"""

import contextlib
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.deploy import load_runtime
from repro.graph.trace import trace_model
from repro.latency.predictors import predict_all_devices
from repro.nas.config import ModelConfig
from repro.nas.crossval import TrainSettings, cross_validate_model
from repro.nas.evaluators import TrainingEvaluator
from repro.nn.resnet import SearchableResNet18, build_model
from repro.onnxlite.export import export_model
from repro.pareto.dominance import non_dominated_mask, non_dominated_mask_kung
from repro.parallel import available_cpus
from repro.profiling import profile_training_step
from repro.serve import BatchPolicy, PlanServer, run_load, serial_baseline
from repro.tensor import Tensor, WorkspacePool, conv2d, use_workspaces
from repro.tensor import conv_ops
from repro.tensor.tensor import no_grad


@pytest.fixture(scope="module")
def winner_model():
    return SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                              pool_choice=0, initial_output_feature=32)


@pytest.fixture(scope="module")
def winner_runtime(winner_model):
    """Interpreted deploy runtime for the Pareto-winner architecture."""
    return load_runtime(export_model(winner_model, (100, 100)))


@pytest.fixture(scope="module")
def winner_plan(winner_runtime):
    """Compiled inference plan for the same model (shared arena)."""
    return winner_runtime.compile()


class TestConvPerformance:
    def test_conv2d_forward(self, benchmark):
        x = Tensor(np.random.default_rng(0).normal(size=(8, 32, 50, 50)).astype(np.float32))
        w = Tensor(np.random.default_rng(1).normal(size=(32, 32, 3, 3)).astype(np.float32) * 0.1)

        def forward():
            with no_grad():
                return conv2d(x, w, None, stride=1, padding=1)

        out = benchmark(forward)
        assert out.shape == (8, 32, 50, 50)

    def test_conv2d_backward(self, benchmark):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 16, 32, 32)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(np.random.default_rng(1).normal(size=(16, 16, 3, 3)).astype(np.float32) * 0.1,
                   requires_grad=True)

        def train_step():
            x.zero_grad()
            w.zero_grad()
            conv2d(x, w, None, stride=1, padding=1).sum().backward()
            return w.grad

        grad = benchmark(train_step)
        assert grad.shape == w.shape


class TestModelPerformance:
    def test_inference_single_image(self, benchmark, winner_model):
        winner_model.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(1, 5, 100, 100)).astype(np.float32))

        def infer():
            with no_grad():
                return winner_model(x)

        out = benchmark(infer)
        assert out.shape == (1, 2)

    def test_trace_and_predict_four_devices(self, benchmark, winner_model):
        def run():
            graph = trace_model(winner_model, (100, 100))
            return predict_all_devices(graph)

        summary = benchmark(run)
        assert len(summary.per_device_ms) == 4

    def test_onnxlite_export(self, benchmark, winner_model):
        blob = benchmark(export_model, winner_model, (100, 100))
        assert len(blob) > 10_000_000  # ~11 MB of weights


class TestDeployRuntimePerformance:
    """Naive interpreter vs. compiled plan on single-image inference."""

    def test_interpreted_single_image(self, benchmark, winner_runtime):
        x = np.random.default_rng(0).normal(size=(1, 5, 100, 100)).astype(np.float32)
        out = benchmark(winner_runtime.run, x)
        assert out.shape == (1, 2)

    def test_compiled_single_image(self, benchmark, winner_plan):
        x = np.random.default_rng(0).normal(size=(1, 5, 100, 100)).astype(np.float32)
        out = benchmark(winner_plan.run, x)
        assert out.shape == (1, 2)

    def test_compiled_beats_interpreter(self, benchmark, winner_runtime, winner_plan):
        """Compiled <= 0.8x naive wall time on the Pareto-winner model.

        Tolerance rationale: BN folding alone removes one full-tensor
        pass per conv and fusion removes the ReLU pass, so anything
        short of a 1.25x speedup means the compile pipeline regressed;
        locally the plan runs ~1.8x faster, leaving headroom for noisy
        CI machines.  Median-of-repeats guards against scheduler blips.
        """
        x = np.random.default_rng(0).normal(size=(1, 5, 100, 100)).astype(np.float32)
        winner_runtime.run(x)  # warm caches
        winner_plan.run(x)     # populate the arena pool

        def median_seconds(fn, repeats=7):
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn(x)
                times.append(time.perf_counter() - t0)
            return sorted(times)[len(times) // 2]

        if getattr(benchmark, "disabled", False):
            compiled = median_seconds(winner_plan.run)
        else:
            benchmark(winner_plan.run, x)
            compiled = benchmark.stats.stats.median
        naive = median_seconds(winner_runtime.run)
        assert compiled <= 0.8 * naive, (
            f"compiled plan ({compiled * 1e3:.2f} ms) should run in <= 80% of "
            f"the interpreter ({naive * 1e3:.2f} ms)"
        )

    def test_planner_reduces_peak_intermediate_memory(self, benchmark, winner_runtime, winner_plan):
        """The arena's planned peak stays well under the interpreter's env.

        Qualitative shape assertion: the interpreter keeps *every*
        activation alive, the planner only the live set — for this
        architecture that is >4x less; we assert the conservative 2x.
        """
        x = np.random.default_rng(0).normal(size=(1, 5, 100, 100)).astype(np.float32)
        winner_runtime.run(x)
        measured_naive = winner_runtime.last_env_bytes
        benchmark(winner_plan.run, x)
        planned = winner_plan.planned_peak_bytes(batch=1)
        assert planned * 2 < measured_naive
        # Static accounting agrees with the measured environment
        # (both exclude weights; input tensor included in each).
        static_naive = winner_plan.naive_env_bytes(batch=1)
        assert measured_naive == static_naive
        # Steady state allocates nothing: every buffer is pool-served.
        stats_before = winner_plan.memory_stats()
        winner_plan.run(x)
        assert winner_plan.memory_stats()["allocations"] == stats_before["allocations"]


class TestParetoPerformance:
    @pytest.fixture(scope="class")
    def cloud(self):
        rng = np.random.default_rng(0)
        return rng.normal(size=(5000, 3))

    def test_naive_front(self, benchmark, cloud):
        mask = benchmark(non_dominated_mask, cloud)
        assert mask.any()

    def test_kung_front(self, benchmark, cloud):
        mask = benchmark(non_dominated_mask_kung, cloud)
        assert mask.any()


def _legacy_conv2d(x, weight, bias, stride=1, padding=0):
    """The pre-PR conv2d, verbatim: allocation-per-call position-major GEMM.

    Kept inline as the benchmark baseline so the training-substrate
    speedup is measured against the exact code path the repo shipped
    before the workspace/hybrid-GEMM work (no pooled buffers, extra
    ``ascontiguousarray`` passes, a backward closure even in eval mode,
    and ``np.zeros`` scatter targets every backward call).
    """
    n, c_in, h, w = x.shape
    c_out, _, kernel, _ = weight.shape
    out_h = conv_ops.conv_output_size(h, kernel, stride, padding)
    out_w = conv_ops.conv_output_size(w, kernel, stride, padding)
    xp = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))) if padding else x.data
    cols = (
        conv_ops._windows(xp, kernel, stride)
        .transpose(0, 2, 3, 1, 4, 5)
        .reshape(n * out_h * out_w, c_in * kernel * kernel)
    )
    cols = np.ascontiguousarray(cols)
    w_mat = weight.data.reshape(c_out, -1).T
    out_mat = cols @ w_mat
    if bias is not None:
        out_mat += bias.data
    out_data = np.ascontiguousarray(out_mat.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2))
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, c_out)
        if bias is not None:
            bias._accumulate(grad_mat.sum(axis=0))
        if weight.requires_grad:
            weight._accumulate((cols.T @ grad_mat).T.reshape(weight.shape))
        if x.requires_grad:
            gc = (grad_mat @ w_mat.T).reshape(n, out_h, out_w, c_in, kernel, kernel)
            gc = gc.transpose(0, 3, 1, 2, 4, 5)
            ph, pw = h + 2 * padding, w + 2 * padding
            gxp = np.zeros((n, c_in, ph, pw), dtype=np.float32)
            for i in range(kernel):
                for j in range(kernel):
                    gxp[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += gc[
                        :, :, :, :, i, j
                    ]
            if padding:
                gxp = gxp[:, :, padding:-padding, padding:-padding]
            x._accumulate(gxp)

    return Tensor._make(out_data, parents, backward, "conv2d")


def _legacy_batch_norm_2d(x, gamma, beta, running_mean, running_var, training,
                          momentum=0.1, eps=1e-5):
    """The pre-PR batch norm, verbatim: four full-tensor temporaries in the
    forward, five more in the training backward, closure always captured."""
    n, c, h, w = x.shape
    axes = (0, 2, 3)
    count = n * h * w
    if training:
        mean = x.data.mean(axis=axes, dtype=np.float32)
        var = x.data.var(axis=axes, dtype=np.float32)
        unbiased = var * (count / max(count - 1, 1))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean.astype(np.float32)
        var = running_var.astype(np.float32)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean[None, :, None, None]) * inv_std[None, :, None, None]
    out_data = x_hat * gamma.data[None, :, None, None] + beta.data[None, :, None, None]

    def backward(grad):
        g = gamma.data[None, :, None, None]
        gamma._accumulate((grad * x_hat).sum(axis=axes))
        beta._accumulate(grad.sum(axis=axes))
        if not x.requires_grad:
            return
        if training:
            dxhat = grad * g
            term2 = dxhat.mean(axis=axes, keepdims=True)
            term3 = x_hat * (dxhat * x_hat).mean(axis=axes, keepdims=True)
            x._accumulate((dxhat - term2 - term3) * inv_std[None, :, None, None])
        else:
            x._accumulate(grad * g * inv_std[None, :, None, None])

    return Tensor._make(out_data, (x, gamma, beta), backward, "batch_norm_2d")


def _legacy_relu(self):
    """The pre-PR relu, verbatim: fresh mask + copying accumulate."""
    out_data = np.maximum(self.data, 0.0)

    def backward(grad):
        self._accumulate(grad * (self.data > 0))

    return Tensor._make(out_data, (self,), backward, "relu")


def _legacy_matmul(self, other):
    """The pre-PR matmul, verbatim: copying accumulates for both operands."""
    other = other if isinstance(other, Tensor) else Tensor(other)
    if self.ndim != 2 or other.ndim != 2:
        raise ValueError(f"matmul expects 2-D operands, got {self.shape} @ {other.shape}")
    out_data = self.data @ other.data

    def backward(grad):
        self._accumulate(grad @ other.data.T)
        other._accumulate(self.data.T @ grad)

    return Tensor._make(out_data, (self, other), backward, "matmul")


def _legacy_max_pool2d(x, kernel, stride):
    """The pre-PR max pool, verbatim: np.zeros scatter + copying accumulate."""
    n, c, h, w = x.shape
    out_h = conv_ops.pool_output_size(h, kernel, stride)
    out_w = conv_ops.pool_output_size(w, kernel, stride)
    windows = conv_ops._windows(x.data, kernel, stride)
    flat = windows.reshape(n, c, out_h, out_w, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out_data = np.ascontiguousarray(np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0])

    def backward(grad):
        grad_x = np.zeros((n, c, h, w), dtype=np.float32)
        ki, kj = np.divmod(arg, kernel)
        oi, oj = np.meshgrid(np.arange(out_h), np.arange(out_w), indexing="ij")
        rows = oi[None, None] * stride + ki
        cols_ = oj[None, None] * stride + kj
        nn, cc = np.meshgrid(np.arange(n), np.arange(c), indexing="ij")
        np.add.at(grad_x, (nn[..., None, None], cc[..., None, None], rows, cols_), grad)
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward, "max_pool2d")


def _legacy_avg_pool2d(x, kernel, stride):
    """The pre-PR average pool, verbatim."""
    n, c, h, w = x.shape
    out_h = conv_ops.pool_output_size(h, kernel, stride)
    out_w = conv_ops.pool_output_size(w, kernel, stride)
    windows = conv_ops._windows(x.data, kernel, stride)
    out_data = np.ascontiguousarray(windows.mean(axis=(-2, -1), dtype=np.float32))
    scale = 1.0 / (kernel * kernel)

    def backward(grad):
        grad_x = np.zeros((n, c, h, w), dtype=np.float32)
        g = grad * scale
        for i in range(kernel):
            for j in range(kernel):
                grad_x[:, :, i : i + stride * out_h : stride, j : j + stride * out_w : stride] += g
        x._accumulate(grad_x)

    return Tensor._make(out_data, (x,), backward, "avg_pool2d")


def _legacy_sgd_step(self):
    """The pre-PR SGD step, verbatim: out-of-place update temporaries."""
    for i, p in enumerate(self.params):
        if p.grad is None:
            continue
        grad = p.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * p.data
        if self.momentum:
            if self._velocity[i] is None:
                self._velocity[i] = grad.copy()
            else:
                v = self._velocity[i]
                v *= self.momentum
                v += grad
            grad = self._velocity[i]
        p.data -= self.lr * grad


@contextlib.contextmanager
def _pre_pr_substrate():
    """Swap the full pre-PR training substrate back into the stack.

    Conv, batch norm, relu, matmul, both pools and the SGD step are
    replaced with their verbatim pre-PR implementations so the speedup
    benchmark measures the whole substrate (hybrid GEMM layouts,
    workspace pooling, gradient donation, in-place optimizer) against
    exactly the code path the repo shipped before this PR — not against
    a baseline that silently inherits half the optimizations.
    """
    from repro.nn.optim import SGD
    from repro.tensor import functional as F

    saved = (
        conv_ops.conv2d, F.batch_norm_2d, Tensor.relu, Tensor.__matmul__,
        conv_ops.max_pool2d, conv_ops.avg_pool2d, SGD.step,
    )
    conv_ops.conv2d = _legacy_conv2d
    F.batch_norm_2d = _legacy_batch_norm_2d
    Tensor.relu = _legacy_relu
    Tensor.__matmul__ = _legacy_matmul
    conv_ops.max_pool2d = _legacy_max_pool2d
    conv_ops.avg_pool2d = _legacy_avg_pool2d
    SGD.step = _legacy_sgd_step
    try:
        yield
    finally:
        (conv_ops.conv2d, F.batch_norm_2d, Tensor.relu, Tensor.__matmul__,
         conv_ops.max_pool2d, conv_ops.avg_pool2d, SGD.step) = saved


class TestTrainingThroughput:
    """The PR 2 substrate: hybrid-GEMM conv + workspace reuse + fold executors.

    Timings land in the CI benchmark JSON artifact next to the inference
    numbers; assertions stay qualitative (ratios, steady-state pool
    behaviour), never absolute wall clock.
    """

    @pytest.fixture(scope="class")
    def bench_config(self):
        """The paper's winning input combination at its 100x100 patch size."""
        return ModelConfig(channels=5, batch=8, kernel_size=3, stride=2, padding=1,
                           pool_choice=0, kernel_size_pool=3, stride_pool=2,
                           initial_output_feature=32)

    def _evaluator(self, **overrides):
        """Small-but-real CV evaluator at the paper's 100x100 patch size."""
        kwargs = dict(samples_per_class=8, patch_size=100, epochs=3, k=2,
                      regions=["california"], seed=0)
        kwargs.update(overrides)
        return TrainingEvaluator(**kwargs)

    def test_training_step_throughput(self, benchmark, bench_config):
        """Images/s + steady-state workspace reuse of one SGD train step."""
        model = build_model(bench_config, seed=0)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, bench_config.channels, 64, 64)).astype(np.float32)
        y = rng.integers(0, 2, size=8)
        from repro.nn.loss import CrossEntropyLoss
        from repro.nn.optim import SGD

        loss_fn = CrossEntropyLoss()
        optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)
        model.train()
        pool = WorkspacePool()

        def step():
            with use_workspaces(pool):
                optimizer.zero_grad()
                loss = loss_fn(model(Tensor(x)), y)
                loss.backward()
                optimizer.step()
            return loss

        step()  # warm the pool so the benchmark sees the steady state
        misses_after_warmup = pool.stats()["misses"]
        benchmark(step)
        stats = pool.stats()
        # Steady state: every scratch acquisition is a recycled buffer.
        assert stats["misses"] == misses_after_warmup
        assert stats["hits"] > stats["misses"]
        assert stats["peak_bytes"] > 0

    def test_training_step_profile_reports_phases(self, bench_config):
        """The profiler's phase split and workspace counters are coherent."""
        model = build_model(bench_config, seed=0)
        profile = profile_training_step(model, batch=4, input_hw=(32, 32), steps=3)
        assert profile.images_per_s > 0
        assert profile.forward_s > 0 and profile.backward_s > 0
        # Misses stop growing after the first step; steps 2..3 are all hits.
        assert profile.workspace["hits"] > profile.workspace["misses"]

    def test_evaluator_speedup_vs_pre_pr_path(self, benchmark, bench_config):
        """The substrate trains >= 1.5x faster than the pre-PR path.

        Tolerance rationale: at the paper's 100x100 patches the hybrid
        GEMM layout, workspace reuse and gradient donation measure
        ~1.8x over the legacy allocation-per-call substrate locally, so
        1.5x leaves headroom for noisy CI machines while still failing
        if the layout heuristic, the pooling or the donation path
        regresses.  The two paths are timed in *paired interleaved*
        rounds and compared by the median per-round ratio — a global
        machine-speed drift between a legacy block and a new block
        would otherwise dominate the comparison.  Fold accuracies are
        compared coarsely here (each fold holds four validation
        samples, i.e. 25-point granularity); exact
        serial/parallel/workspace equality lives in
        ``tests/test_nas_training.py``.
        """
        legacy_evaluator = self._evaluator(workspaces=False)
        new_evaluator = self._evaluator()
        with _pre_pr_substrate():  # warm dataset caches on both paths
            legacy_result = legacy_evaluator.evaluate(bench_config)
        new_result = new_evaluator.evaluate(bench_config)

        ratios = []
        for _ in range(3):
            with _pre_pr_substrate():
                t0 = time.perf_counter()
                legacy_evaluator.evaluate(bench_config)
                legacy_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            new_evaluator.evaluate(bench_config)
            new_s = time.perf_counter() - t0
            ratios.append((legacy_s / new_s, legacy_s, new_s))
        ratios.sort()
        speedup, legacy_s, new_s = ratios[len(ratios) // 2]

        if not getattr(benchmark, "disabled", False):
            # Artifact timing of the new path (the assert above is drawn
            # from the paired rounds, not from this).
            benchmark(new_evaluator.evaluate, bench_config)

        assert speedup >= 1.5, (
            f"training substrate should be >= 1.5x the pre-PR path: "
            f"median paired round legacy {legacy_s * 1e3:.0f} ms vs "
            f"new {new_s * 1e3:.0f} ms ({speedup:.2f}x)"
        )
        # Qualitatively unchanged accuracy: same fold count, valid
        # percentages, and means within the coarse granularity bound.
        assert len(new_result.fold_accuracies) == len(legacy_result.fold_accuracies)
        assert all(0.0 <= a <= 100.0 for a in new_result.fold_accuracies)
        assert abs(new_result.accuracy - legacy_result.accuracy) <= 50.0

    def test_fold_parallel_matches_serial(self, benchmark, bench_config):
        """Process-pool CV reproduces serial fold accuracies bitwise.

        No wall-clock assertion: on a single-core runner the pool's
        spawn cost dwarfs the fold work, so only determinism — the
        property that makes fold parallelism safe to enable anywhere —
        is asserted, and both timings are reported in the artifact.
        """
        from repro.data.dataset import DrainageCrossingDataset

        dataset = DrainageCrossingDataset(channels=bench_config.channels, size=48,
                                          samples_per_class=4, regions=["california"], seed=0)
        settings = TrainSettings(epochs=1, k=2, recalibrate_bn=False)

        def run_serial():
            return cross_validate_model(bench_config, dataset, settings=settings, seed=7)

        serial_accs = benchmark(run_serial)
        t0 = time.perf_counter()
        parallel_accs = cross_validate_model(
            bench_config, dataset,
            settings=replace(settings, executor="process", workers=2), seed=7,
        )
        parallel_s = time.perf_counter() - t0
        print(f"\nfold-parallel CV: {parallel_s * 1e3:.0f} ms (process x2) "
              f"vs serial — accuracies {serial_accs}")
        assert parallel_accs == serial_accs  # bitwise, not approximately


class TestServingThroughput:
    """Micro-batching server vs serial single-image compiled inference.

    The serving layer's reason to exist is batched GEMM efficiency: at
    the 24x24 deployment tile the merged-batch convolution path turns
    many small matmuls into a few large ones, and the batcher is what
    actually delivers full batches to it under concurrent load.
    """

    HW = 24

    @pytest.fixture(scope="class")
    def serve_plan(self, winner_model):
        """Compiled plan for the winner architecture at the 24x24 tile.

        The module-scoped ``winner_plan`` is exported at the paper's
        100x100 patch; serving targets the deployment tile where the
        batch-merged convolution path engages (spatial positions <=
        ``BATCH_MERGED_MAX_POSITIONS``), so this compiles its own.
        """
        return load_runtime(export_model(winner_model, (self.HW, self.HW))).compile()

    def test_server_throughput_vs_serial(self, benchmark, serve_plan):
        """The server sustains >= 2x serial single-image throughput.

        Tolerance rationale: at the 24x24 tile the batch-merged GEMM
        measures ~2.7x raw single-image throughput at batch 8 and ~3.0x
        at batch 16 locally, and the full server (queueing, padding,
        result scatter) lands at ~2.5-2.9x; 2.0x leaves headroom for
        noisy CI machines while still failing if micro-batching stops
        forming large batches or the merged convolution path regresses.
        Serial and served rounds are timed *paired and interleaved* and
        compared by the median per-round ratio, per the repo convention,
        so a global machine-speed drift cannot dominate the comparison.
        """
        policy = BatchPolicy(max_batch_size=16, max_queue_delay_ms=5.0,
                             max_queue_depth=64, replicas=1)
        rng = np.random.default_rng(0)
        x = rng.normal(size=serve_plan.input_shape).astype(np.float32)

        with PlanServer(serve_plan, policy=policy) as server:
            # Correctness spot-check: one served request matches the
            # serial compiled path on the same image.
            served_out = server.infer(x)
            serial_out = serve_plan.replicate().run(x[None])[0]
            np.testing.assert_allclose(served_out, serial_out, rtol=1e-3, atol=1e-4)

            allocations_after_warm = server.cache.arena_allocations()
            rounds = []
            for _ in range(3):
                baseline = serial_baseline(serve_plan.replicate(), duration_s=0.5, seed=0)
                report = run_load(server, duration_s=1.0, clients=32, seed=0)
                rounds.append((report.throughput_ips / baseline.throughput_ips,
                               baseline, report))
            rounds.sort(key=lambda r: r[0])
            speedup, baseline, report = rounds[len(rounds) // 2]
            # Steady state: warmup covered every (bucket, replica) pair,
            # so the load phase allocated nothing new in any arena.
            assert server.cache.arena_allocations() == allocations_after_warm

        assert report.errors == 0
        assert report.mean_batch_size >= 8.0, (
            f"micro-batcher should form large batches under 32 concurrent "
            f"clients: mean batch {report.mean_batch_size:.1f}"
        )
        assert speedup >= 2.0, (
            f"serving should be >= 2x serial single-image inference: "
            f"median paired round serial {baseline.throughput_ips:.0f} "
            f"images/s vs served {report.throughput_ips:.0f} images/s "
            f"({speedup:.2f}x)"
        )

        if not getattr(benchmark, "disabled", False):
            # Artifact timing of one served request under no load (the
            # assert above is drawn from the paired rounds, not this).
            with PlanServer(serve_plan, policy=policy) as artifact_server:
                benchmark(artifact_server.infer, x)
        benchmark.extra_info["serving_throughput_ips"] = round(report.throughput_ips, 1)
        benchmark.extra_info["serial_throughput_ips"] = round(baseline.throughput_ips, 1)
        benchmark.extra_info["speedup_vs_serial"] = round(speedup, 2)
        benchmark.extra_info["latency_ms_p50"] = round(report.latency_ms_p50, 3)
        benchmark.extra_info["latency_ms_p99"] = round(report.latency_ms_p99, 3)
        benchmark.extra_info["mean_batch_size"] = round(report.mean_batch_size, 2)

    def test_process_workers_beat_thread_replicas(self, benchmark, serve_plan):
        """Process workers >= 1.5x thread replicas on a >= 4-core machine.

        Thread replicas time-slice one GIL, so added replicas buy little
        on CPU-bound plans; process workers over the shared-memory
        weight arena actually use the cores.  Both modes run 4 replicas
        and identical load, timed *paired and interleaved* (thread round
        then process round, three pairs, median ratio) per the repo
        convention.  The 1.5x floor (not the naive 4x) leaves room for
        the BLAS inner loops that already release the GIL in thread
        mode and for staging/IPC overhead.  On fewer than 4 usable
        cores the ratio is recorded but not asserted — there is no
        parallelism for process mode to unlock.
        """
        workers = 4
        cores = available_cpus()
        rng = np.random.default_rng(0)
        x = rng.normal(size=serve_plan.input_shape).astype(np.float32)

        def policy(mode: str) -> BatchPolicy:
            return BatchPolicy(max_batch_size=16, max_queue_delay_ms=5.0,
                               max_queue_depth=128, replicas=workers,
                               worker_mode=mode)

        rounds = []
        proc_stats = {}
        with PlanServer(serve_plan, policy=policy("thread"), cpus=workers) as ts, \
                PlanServer(serve_plan, policy=policy("process"), cpus=workers) as ps:
            # Cross-mode identity spot-check on a bucket-1 request.
            np.testing.assert_array_equal(ts.infer(x), ps.infer(x))
            for _ in range(3):
                thread_report = run_load(ts, duration_s=1.0, clients=32, seed=0)
                proc_report = run_load(ps, duration_s=1.0, clients=32, seed=0)
                rounds.append((proc_report.throughput_ips
                               / thread_report.throughput_ips,
                               thread_report, proc_report))
            proc_stats = ps.stats()
        rounds.sort(key=lambda r: r[0])
        ratio, thread_report, proc_report = rounds[len(rounds) // 2]

        assert thread_report.errors == 0 and proc_report.errors == 0
        assert proc_stats["worker_deaths"] == 0 and not proc_stats["degraded"]
        # Weights were shared, not copied, into the 4 workers.
        assert proc_stats["shared_weight_bytes"] > 0
        assert proc_stats["worker_private_weight_bytes"] == 0
        if cores >= workers:
            assert ratio >= 1.5, (
                f"{workers} process workers should beat {workers} thread "
                f"replicas on {cores} cores: thread "
                f"{thread_report.throughput_ips:.0f} images/s vs process "
                f"{proc_report.throughput_ips:.0f} images/s ({ratio:.2f}x)"
            )

        if not getattr(benchmark, "disabled", False):
            with PlanServer(serve_plan, policy=policy("process"),
                            cpus=workers) as artifact_server:
                benchmark(artifact_server.infer, x)
        benchmark.extra_info["worker_mode"] = "process"
        benchmark.extra_info["workers"] = workers
        benchmark.extra_info["cpu_count"] = cores
        benchmark.extra_info["process_vs_thread_x"] = round(ratio, 2)
        benchmark.extra_info["thread_throughput_ips"] = round(
            thread_report.throughput_ips, 1)
        benchmark.extra_info["process_throughput_ips"] = round(
            proc_report.throughput_ips, 1)
        benchmark.extra_info["shared_weight_mb"] = round(
            proc_stats["shared_weight_bytes"] / 1e6, 2)


class TestQuantizedServing:
    """Quantized + autotuned compiled plan vs the fp32 default compilation.

    Honest framing: NumPy exposes no int8 SIMD dot-product units, so the
    *pure* int8 kernels (exact integer GEMM over an f32 carrier plus
    quantize/requantize epilogues) measure **slower** than the fp32 BLAS
    path on every layer of this model — the opposite of real edge
    silicon, where int8 delivers 2-4x.  The deployable configuration is
    therefore "quantized weights + per-layer autotuned kernels": the
    autotuner keeps fp32/Winograd where int8 loses, so the quantized
    artifact (4x smaller on disk) serves at >= fp32 throughput.  Both
    ratios are asserted/recorded: the autotuned floor is enforced, the
    pure-int8 ratio is published in the artifact so the NumPy-substrate
    penalty is visible rather than hidden.
    """

    HW = 24

    @pytest.fixture(scope="class")
    def quantized_setup(self, winner_model, tmp_path_factory):
        from repro.deploy import autotune_variants, compile_plan
        from repro.onnxlite.reader import proto_from_bytes
        from repro.quant.calibrate import calibrate_activations
        from repro.quant.export import export_quantized_model

        proto = proto_from_bytes(export_quantized_model(winner_model, (self.HW, self.HW)))
        rng = np.random.default_rng(0)
        calibrate_activations(
            proto, rng.standard_normal((16, 5, self.HW, self.HW)).astype(np.float32))
        cache = tmp_path_factory.mktemp("autotune") / "autotune.json"
        tune = autotune_variants(proto, batch=8, cache_path=cache)
        fp32_plan = load_runtime(export_model(winner_model, (self.HW, self.HW))).compile()
        tuned_plan = compile_plan(proto, variants=tune.variants)
        int8_plan = compile_plan(proto)  # integer defaults on every eligible layer
        return fp32_plan, tuned_plan, int8_plan, tune

    def test_autotuned_quantized_serving_matches_fp32(self, benchmark, quantized_setup):
        """Autotuned quantized plan >= 0.9x fp32 serial throughput at the tile.

        Tolerance rationale: the autotuner picks fp32 or Winograd
        wherever int8 loses, so the tuned plan tracks the fp32 default
        within measurement noise and typically beats it by ~5% through
        the Winograd wins (locally 1.0-1.1x).  0.9x catches a real
        regression — an autotuner that starts forcing slow kernels, or
        an integer epilogue leaking into hot layers — while absorbing
        CI scheduler noise.  Rounds are paired and interleaved, compared
        by the median per-round ratio, per the repo convention.
        """
        from repro.serve import serial_baseline

        fp32_plan, tuned_plan, int8_plan, tune = quantized_setup
        x = np.random.default_rng(0).normal(size=(1, 5, self.HW, self.HW)).astype(np.float32)
        for plan in (fp32_plan, tuned_plan, int8_plan):
            plan.run(x)  # warm arenas

        rounds = []
        for _ in range(3):
            fp32 = serial_baseline(fp32_plan.replicate(), duration_s=0.5, seed=0)
            tuned = serial_baseline(tuned_plan.replicate(), duration_s=0.5, seed=0)
            int8 = serial_baseline(int8_plan.replicate(), duration_s=0.5, seed=0)
            rounds.append((tuned.throughput_ips / fp32.throughput_ips,
                           int8.throughput_ips / fp32.throughput_ips,
                           fp32, tuned))
        rounds.sort(key=lambda r: r[0])
        tuned_ratio, int8_ratio, fp32, tuned = rounds[len(rounds) // 2]

        assert tuned_ratio >= 0.9, (
            f"autotuned quantized serving should hold >= 0.9x fp32: median "
            f"paired round fp32 {fp32.throughput_ips:.0f} images/s vs tuned "
            f"{tuned.throughput_ips:.0f} images/s ({tuned_ratio:.2f}x)"
        )
        # The decision table itself: every winner is a registry variant,
        # and at this tile the tuner must keep the stem off pure int8
        # only if int8 measured slower — no assertion on *which* kernel
        # wins, that is machine-dependent and exactly what tuning is for.
        from repro.latency.fusion import KERNEL_VARIANTS

        assert all(row["chosen"] in KERNEL_VARIANTS[row["op_type"]]
                   for row in tune.table.values())

        if not getattr(benchmark, "disabled", False):
            benchmark(tuned_plan.run, x)
        benchmark.extra_info["tuned_vs_fp32_serial"] = round(tuned_ratio, 3)
        benchmark.extra_info["pure_int8_vs_fp32_serial"] = round(int8_ratio, 3)
        benchmark.extra_info["autotuned_layers"] = len(tune.variants)
        benchmark.extra_info["fp32_throughput_ips"] = round(fp32.throughput_ips, 1)
        benchmark.extra_info["tuned_throughput_ips"] = round(tuned.throughput_ips, 1)


class TestDataPerformance:
    def test_dataset_batch_generation(self, benchmark):
        from repro.data.dataset import DrainageCrossingDataset

        dataset = DrainageCrossingDataset(channels=7, size=100, samples_per_class=4,
                                          regions=["california"], seed=0, cache=False)
        indices = np.arange(8)
        x, y = benchmark(dataset.batch, indices)
        assert x.shape == (8, 7, 100, 100)
