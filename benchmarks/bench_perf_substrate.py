"""Substrate performance benchmarks (pytest-benchmark timings only).

These cover the hot paths the reproduction rests on: im2col convolution
forward/backward, full-model inference (training stack, interpreted
deploy runtime, and compiled inference plan), onnxlite export, 4-device
latency prediction, front extraction at scale, and dataset synthesis.

Per the repo convention, assertions capture the qualitative *shape* of
the result (orderings, ratios) with documented tolerances, never exact
wall-clock values.
"""

import time

import numpy as np
import pytest

from repro.deploy import load_runtime
from repro.graph.trace import trace_model
from repro.latency.predictors import predict_all_devices
from repro.nn.resnet import SearchableResNet18
from repro.onnxlite.export import export_model
from repro.pareto.dominance import non_dominated_mask, non_dominated_mask_kung
from repro.tensor import Tensor, conv2d
from repro.tensor.tensor import no_grad


@pytest.fixture(scope="module")
def winner_model():
    return SearchableResNet18(in_channels=5, kernel_size=3, stride=2, padding=1,
                              pool_choice=0, initial_output_feature=32)


@pytest.fixture(scope="module")
def winner_runtime(winner_model):
    """Interpreted deploy runtime for the Pareto-winner architecture."""
    return load_runtime(export_model(winner_model, (100, 100)))


@pytest.fixture(scope="module")
def winner_plan(winner_runtime):
    """Compiled inference plan for the same model (shared arena)."""
    return winner_runtime.compile()


class TestConvPerformance:
    def test_conv2d_forward(self, benchmark):
        x = Tensor(np.random.default_rng(0).normal(size=(8, 32, 50, 50)).astype(np.float32))
        w = Tensor(np.random.default_rng(1).normal(size=(32, 32, 3, 3)).astype(np.float32) * 0.1)

        def forward():
            with no_grad():
                return conv2d(x, w, None, stride=1, padding=1)

        out = benchmark(forward)
        assert out.shape == (8, 32, 50, 50)

    def test_conv2d_backward(self, benchmark):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 16, 32, 32)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(np.random.default_rng(1).normal(size=(16, 16, 3, 3)).astype(np.float32) * 0.1,
                   requires_grad=True)

        def train_step():
            x.zero_grad()
            w.zero_grad()
            conv2d(x, w, None, stride=1, padding=1).sum().backward()
            return w.grad

        grad = benchmark(train_step)
        assert grad.shape == w.shape


class TestModelPerformance:
    def test_inference_single_image(self, benchmark, winner_model):
        winner_model.eval()
        x = Tensor(np.random.default_rng(0).normal(size=(1, 5, 100, 100)).astype(np.float32))

        def infer():
            with no_grad():
                return winner_model(x)

        out = benchmark(infer)
        assert out.shape == (1, 2)

    def test_trace_and_predict_four_devices(self, benchmark, winner_model):
        def run():
            graph = trace_model(winner_model, (100, 100))
            return predict_all_devices(graph)

        summary = benchmark(run)
        assert len(summary.per_device_ms) == 4

    def test_onnxlite_export(self, benchmark, winner_model):
        blob = benchmark(export_model, winner_model, (100, 100))
        assert len(blob) > 10_000_000  # ~11 MB of weights


class TestDeployRuntimePerformance:
    """Naive interpreter vs. compiled plan on single-image inference."""

    def test_interpreted_single_image(self, benchmark, winner_runtime):
        x = np.random.default_rng(0).normal(size=(1, 5, 100, 100)).astype(np.float32)
        out = benchmark(winner_runtime.run, x)
        assert out.shape == (1, 2)

    def test_compiled_single_image(self, benchmark, winner_plan):
        x = np.random.default_rng(0).normal(size=(1, 5, 100, 100)).astype(np.float32)
        out = benchmark(winner_plan.run, x)
        assert out.shape == (1, 2)

    def test_compiled_beats_interpreter(self, benchmark, winner_runtime, winner_plan):
        """Compiled <= 0.8x naive wall time on the Pareto-winner model.

        Tolerance rationale: BN folding alone removes one full-tensor
        pass per conv and fusion removes the ReLU pass, so anything
        short of a 1.25x speedup means the compile pipeline regressed;
        locally the plan runs ~1.8x faster, leaving headroom for noisy
        CI machines.  Median-of-repeats guards against scheduler blips.
        """
        x = np.random.default_rng(0).normal(size=(1, 5, 100, 100)).astype(np.float32)
        winner_runtime.run(x)  # warm caches
        winner_plan.run(x)     # populate the arena pool

        def median_seconds(fn, repeats=7):
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                fn(x)
                times.append(time.perf_counter() - t0)
            return sorted(times)[len(times) // 2]

        if getattr(benchmark, "disabled", False):
            compiled = median_seconds(winner_plan.run)
        else:
            benchmark(winner_plan.run, x)
            compiled = benchmark.stats.stats.median
        naive = median_seconds(winner_runtime.run)
        assert compiled <= 0.8 * naive, (
            f"compiled plan ({compiled * 1e3:.2f} ms) should run in <= 80% of "
            f"the interpreter ({naive * 1e3:.2f} ms)"
        )

    def test_planner_reduces_peak_intermediate_memory(self, benchmark, winner_runtime, winner_plan):
        """The arena's planned peak stays well under the interpreter's env.

        Qualitative shape assertion: the interpreter keeps *every*
        activation alive, the planner only the live set — for this
        architecture that is >4x less; we assert the conservative 2x.
        """
        x = np.random.default_rng(0).normal(size=(1, 5, 100, 100)).astype(np.float32)
        winner_runtime.run(x)
        measured_naive = winner_runtime.last_env_bytes
        benchmark(winner_plan.run, x)
        planned = winner_plan.planned_peak_bytes(batch=1)
        assert planned * 2 < measured_naive
        # Static accounting agrees with the measured environment
        # (both exclude weights; input tensor included in each).
        static_naive = winner_plan.naive_env_bytes(batch=1)
        assert measured_naive == static_naive
        # Steady state allocates nothing: every buffer is pool-served.
        stats_before = winner_plan.memory_stats()
        winner_plan.run(x)
        assert winner_plan.memory_stats()["allocations"] == stats_before["allocations"]


class TestParetoPerformance:
    @pytest.fixture(scope="class")
    def cloud(self):
        rng = np.random.default_rng(0)
        return rng.normal(size=(5000, 3))

    def test_naive_front(self, benchmark, cloud):
        mask = benchmark(non_dominated_mask, cloud)
        assert mask.any()

    def test_kung_front(self, benchmark, cloud):
        mask = benchmark(non_dominated_mask_kung, cloud)
        assert mask.any()


class TestDataPerformance:
    def test_dataset_batch_generation(self, benchmark):
        from repro.data.dataset import DrainageCrossingDataset

        dataset = DrainageCrossingDataset(channels=7, size=100, samples_per_class=4,
                                          regions=["california"], seed=0, cache=False)
        indices = np.arange(8)
        x, y = benchmark(dataset.batch, indices)
        assert x.shape == (8, 7, 100, 100)
