"""Shared fixtures for the benchmark harness.

The expensive artifact — the paper's full 1,728-trial sweep — is computed
once per session and shared by the Table-3/4 and Figure-3/4 benches.
Every bench prints its reproduced rows next to the paper's, so running
``pytest benchmarks/ --benchmark-only`` regenerates the whole evaluation
section in one pass.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import evaluate_baselines, run_paper_sweep


@pytest.fixture(scope="session")
def paper_sweep():
    """The Section-4 sweep: 1,728 launched trials, 1,717 valid outcomes."""
    return run_paper_sweep(seed=0)


@pytest.fixture(scope="session")
def baseline_records():
    """The six stock ResNet-18 variants of Table 5."""
    return evaluate_baselines()
