"""Figure 3 — the 3-D Pareto scatter.

Regenerates the normalized 3-objective point cloud with the red
(non-dominated) markers and checks its structure; benchmarks the
normalization of the full cloud.
"""

import numpy as np

from repro.core.figures import pareto_scatter_figure
from repro.pareto.normalize import normalize_minmax
from repro.utils.tables import render_table


def test_figure3_scatter_data(benchmark, paper_sweep):
    fig = pareto_scatter_figure(paper_sweep)
    print()
    print(f"Figure 3 — {fig['n_points']} points, {fig['n_front']} non-dominated (red)")
    from repro.core.plots import ascii_scatter

    print(ascii_scatter(fig["points"][:, 1], fig["points"][:, 0], fig["front_mask"],
                        x_label="latency (ms)", y_label="accuracy (%)"))
    front_points = fig["points"][fig["front_mask"]]
    rows = [
        {"accuracy": round(p[0], 2), "latency_ms": round(p[1], 2), "memory_mb": round(p[2], 2)}
        for p in front_points
    ]
    print(render_table(rows, title="Figure 3 — red (non-dominated) points"))

    assert fig["n_points"] == 1717
    assert fig["axes"] == ["accuracy", "latency_ms", "memory_mb"]
    assert 2 <= fig["n_front"] <= 10
    # Normalization maps the cloud into the unit cube with extremes touched.
    norm = fig["points_normalized"]
    np.testing.assert_allclose(norm.min(axis=0), 0.0, atol=1e-12)
    np.testing.assert_allclose(norm.max(axis=0), 1.0, atol=1e-12)
    # The front sits in the cheap corner: low normalized latency/memory.
    front_norm = norm[fig["front_mask"]]
    assert front_norm[:, 1].max() < 0.05
    assert front_norm[:, 2].max() < 0.05
    assert front_norm[:, 0].max() > 0.9  # and includes the accuracy maximum

    out = benchmark(normalize_minmax, fig["points"])
    assert out.shape == fig["points"].shape
