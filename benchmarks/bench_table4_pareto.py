"""Table 4 — the non-dominated solutions.

Reproduces the Pareto-optimal set of the sweep and checks the structural
claims the paper draws from it (Figure 4 commonalities): every winner
uses the smallest kernel, stride 2, minimal padding and the smallest
initial feature width, at ~8 ms / ~11 MB with accuracy at or above the
stock ResNet-18.

Note on membership: the paper lists five solutions, but its rows 3 and 5
are dominated by rows 1 and 4 under the standard dominance definition
applied to the table's own values (equal memory, worse accuracy *and*
latency) — see EXPERIMENTS.md.  The reproduction therefore asserts the
structural traits and the presence of the paper's two strongest winners,
not an exact row-set match; the per-combination analysis below recovers
pooled solutions analogous to the paper's rows 3/5.
"""

from repro.core.paper import TABLE4_PARETO
from repro.core.report import pareto_table, per_combination_fronts
from repro.pareto.dominance import non_dominated_mask_kung
from repro.utils.tables import render_table


def test_table4_non_dominated_solutions(benchmark, paper_sweep):
    rows = pareto_table(paper_sweep)
    print()
    print(render_table(rows, title=f"Table 4 — non-dominated solutions (ours: {len(rows)}, paper: 5)"))
    print(render_table(TABLE4_PARETO, title="Table 4 — paper's reported rows"))

    assert 2 <= len(rows) <= 10  # a small, selective front, like the paper's 5

    # The Figure-4 commonalities hold for every winner.
    for row in rows:
        assert row["initial_output_feature"] == 32
        assert row["kernel_size"] == 3
        assert row["stride"] == 2
        assert row["padding"] == 1
        assert abs(row["memory_mb"] - 11.18) < 0.1

    # The paper's strongest winner (7ch/b16/no-pool) tops our front too.
    best = rows[0]
    assert (best["channels"], best["batch"], best["pool_choice"]) == (7, 16, 0)
    assert abs(best["accuracy"] - 96.13) < 1.0
    assert abs(best["latency_ms"] - 8.19) < 1.0

    # The ch5 analogue of paper row 2 is present.
    assert any(r["channels"] == 5 and r["pool_choice"] == 0 for r in rows)

    # Per-combination fronts recover pooled winners (paper rows 3/5 analogues).
    fronts = per_combination_fronts(paper_sweep)
    pooled_members = [
        r for rows_ in fronts.values() for r in rows_ if r["pool_choice"] == 1
    ]
    assert pooled_members, "per-combination analysis should surface pooled solutions"
    assert any(abs(r["latency_ms"] - 18.3) < 3.0 for r in pooled_members)

    # Benchmark: front extraction (Kung) over the full objective matrix.
    values = paper_sweep.pareto.values.copy()
    values[:, 0] = -values[:, 0]  # maximize accuracy
    mask = benchmark(non_dominated_mask_kung, values)
    assert mask.sum() == len(rows)
