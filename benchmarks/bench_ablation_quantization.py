"""Ablation — int8 post-training quantization of the Pareto winner.

The paper stops at fp32; the obvious next step for its resource-limited
targets is int8 PTQ.  This bench trains the winning architecture on
synthetic drainage data, fake-quantizes its weights, and measures the
*real* accuracy cost on held-out patches alongside the 4x storage
reduction — extending the paper's memory objective from 11.2 MB to
~2.8 MB.
"""

import numpy as np

from repro.data.dataset import DrainageCrossingDataset
from repro.nas.config import ModelConfig
from repro.nas.crossval import TrainSettings, evaluate_accuracy, train_one_model
from repro.nn.resnet import build_model
from repro.quant import fake_quantize_model, quantized_size_mb
from repro.onnxlite import model_size_mb
from repro.utils.tables import render_table


def test_ablation_int8_quantization(benchmark):
    config = ModelConfig(channels=5, batch=8, kernel_size=3, stride=2, padding=1,
                         pool_choice=0, kernel_size_pool=3, stride_pool=2,
                         initial_output_feature=32)
    dataset = DrainageCrossingDataset(channels=5, size=28, samples_per_class=8,
                                      regions=["nebraska", "california"], seed=2)
    order = np.random.default_rng(0).permutation(len(dataset))
    split = int(0.75 * len(dataset))
    train_idx, test_idx = order[:split], order[split:]

    model = build_model(config, seed=0)
    train_one_model(model, dataset, train_idx, batch_size=8,
                    settings=TrainSettings(epochs=4, lr=0.02), rng_seed=0)
    fp32_acc = evaluate_accuracy(model, dataset, test_idx)
    fp32_mb = model_size_mb(model)

    fake_quantize_model(model, dtype="int8")
    int8_acc = evaluate_accuracy(model, dataset, test_idx)
    int8_mb = quantized_size_mb(model, dtype="int8")

    rows = [
        {"precision": "fp32 (paper)", "accuracy": round(fp32_acc, 1), "storage_mb": round(fp32_mb, 2)},
        {"precision": "int8 PTQ", "accuracy": round(int8_acc, 1), "storage_mb": round(int8_mb, 2)},
    ]
    print()
    print(render_table(rows, title="Ablation — int8 quantization of the Pareto winner"))

    # Storage shrinks ~4x; accuracy moves by at most a few points on this
    # tiny eval set (int8 weight error is sub-percent).
    assert 3.5 < fp32_mb / int8_mb < 4.3
    assert abs(int8_acc - fp32_acc) <= 15.0  # <= 1-2 patches on a small test set

    # Benchmark: quantizing all 2.8M weights of the winner.
    fresh = build_model(config, seed=1)
    quantizers = benchmark(fake_quantize_model, fresh)
    assert len(quantizers) > 10
