"""Figure 1 — the ResNet-18 architecture with 5- and 7-channel inputs.

Regenerates the layer-stack description (stem -> four residual stages ->
pool -> FC -> binary output) for both channel stacks, and benchmarks
model tracing.
"""

from repro.core.figures import architecture_figure
from repro.graph.trace import trace_model
from repro.nn.resnet import build_baseline_resnet18
from repro.utils.tables import render_table


def test_figure1_architecture(benchmark):
    for channels in (5, 7):
        fig = architecture_figure(build_baseline_resnet18(in_channels=channels))
        print()
        print(f"Figure 1 — input stack ({channels} channels): "
              + (", ".join(fig["channels_5"] if channels == 5 else fig["channels_7"])))
        print(render_table(fig["layers"][:8] + fig["layers"][-3:],
                           title=f"Figure 1 — layer stack excerpt ({channels}ch), "
                                 f"{fig['total_params']:,} params"))
        ops = [layer["op"] for layer in fig["layers"]]
        assert ops[0] == "input" and ops[-1] == "output"
        assert ops.count("add") == 8  # four stages x two residual blocks
        assert "fc" in ops and "global_avg_pool" in ops
        # Binary drainage-crossing output.
        assert fig["layers"][-1]["out_shape"] == "2"

    # 7-channel model only grows by the extra stem filters.
    params5 = architecture_figure(build_baseline_resnet18(in_channels=5))["total_params"]
    params7 = architecture_figure(build_baseline_resnet18(in_channels=7))["total_params"]
    assert params7 - params5 == 2 * 64 * 7 * 7

    model = build_baseline_resnet18(in_channels=5)
    graph = benchmark(trace_model, model, (100, 100))
    assert len(graph) > 50
