"""Table 1 — data sources and study regions.

Reproduces the per-region sample accounting of the synthetic dataset and
benchmarks patch-synthesis throughput (the 'data downloading and
processing' stage of the paper's appendix workflow).
"""

import numpy as np

from repro.core.paper import TABLE1_REGIONS
from repro.data import REGIONS, generate_patch, total_sample_count
from repro.utils.tables import render_table

_KEY_BY_LOCATION = {
    "Nebraska": "nebraska",
    "Illinois": "illinois",
    "North Dakota": "north_dakota",
    "California": "california",
}


def test_table1_region_accounting(benchmark):
    rows = []
    for paper_row in TABLE1_REGIONS:
        region = REGIONS[_KEY_BY_LOCATION[paper_row["location"]]]
        rows.append(
            {
                "location": region.name,
                "dem_source": region.dem_source,
                "resolution": f"{region.dem_resolution_m}m",
                "true": region.true_samples,
                "false": region.false_samples,
                "total": region.total_samples,
                "paper_total": paper_row["total"],
            }
        )
        assert region.true_samples == paper_row["true"]
        assert region.false_samples == paper_row["false"]
        assert region.total_samples == paper_row["total"]
    assert total_sample_count() == 12068
    print()
    print(render_table(rows, title="Table 1 — data sources and study regions (ours vs paper)"))

    # Benchmark: synthesizing one full 7-channel 100x100 training patch.
    region = REGIONS["california"]
    counter = {"i": 0}

    def synth():
        counter["i"] += 1
        rng = np.random.default_rng(counter["i"])
        return generate_patch(region, label=counter["i"] % 2, rng=rng, size=100, channels=7)

    patch = benchmark(synth)
    assert patch.shape == (7, 100, 100)
