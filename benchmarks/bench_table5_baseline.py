"""Table 5 — evaluation of the six stock ResNet-18 benchmark variants.

Reproduces accuracy / latency / lat_std / memory for all six input
combinations and checks the paper's headline comparison: the Pareto
winners beat the baseline ~4x on latency and memory at comparable or
better accuracy.  Benchmarks the architecture-measurement path (trace +
4-device prediction + onnx export).
"""

import pytest

from repro.core.paper import TABLE5_BASELINE
from repro.core.report import baseline_table, pareto_table
from repro.nas.config import ModelConfig
from repro.nas.experiment import measure_architecture
from repro.utils.tables import render_table


def test_table5_baseline_variants(benchmark, baseline_records, paper_sweep):
    rows = baseline_table(baseline_records)
    paper = {(r["channels"], r["batch"]): r for r in TABLE5_BASELINE}
    merged = []
    for row in rows:
        ref = paper[(row["channels"], row["batch"])]
        merged.append({**row, "paper_acc": ref["accuracy"], "paper_lat": ref["latency_ms"],
                       "paper_mem": ref["memory_mb"]})
    print()
    print(render_table(merged, title="Table 5 — stock ResNet-18 variants (ours vs paper)"))

    for row in rows:
        ref = paper[(row["channels"], row["batch"])]
        assert row["accuracy"] == pytest.approx(ref["accuracy"], abs=1.5)
        assert row["latency_ms"] == pytest.approx(ref["latency_ms"], rel=0.10)
        assert row["lat_std"] == pytest.approx(ref["lat_std"], rel=0.10)
        assert row["memory_mb"] == pytest.approx(ref["memory_mb"], rel=0.01)

    # Orderings the paper reports: 7ch beats 5ch; batch 16 is best,
    # batch 32 worst (Table 5, both channel counts).
    by = {(r["channels"], r["batch"]): r["accuracy"] for r in rows}
    for channels in (5, 7):
        assert by[(7, 16)] > by[(5, 16)]
        assert by[(channels, 16)] > by[(channels, 8)] > by[(channels, 32)]

    # Headline comparison: winners dominate the baseline ~4x on cost.
    winners = pareto_table(paper_sweep)
    best = winners[0]
    baseline_716 = next(r for r in rows if (r["channels"], r["batch"]) == (7, 16))
    assert baseline_716["latency_ms"] / best["latency_ms"] > 3.0
    assert baseline_716["memory_mb"] / best["memory_mb"] > 3.5
    assert best["accuracy"] >= baseline_716["accuracy"] - 0.5

    # Benchmark: measuring one baseline architecture end to end.
    config = ModelConfig.baseline(channels=5, batch=16)
    metrics = benchmark(measure_architecture, config)
    assert metrics.memory_mb == pytest.approx(44.7, rel=0.01)
