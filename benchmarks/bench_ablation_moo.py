"""Ablation — searching *for* the Pareto front vs post-hoc filtering.

The paper exhaustively evaluates 1,728 trials and filters the front
afterwards.  This bench runs the NSGA-II-style multi-objective evolution
(`repro.nas.moo`) under a 300-trial budget and scores its front against
the exhaustive grid's by inverted generational distance (IGD) and
hypervolume — quantifying how much of the paper's 38-hour grid was
actually needed to find its answer.
"""

import numpy as np

from repro.nas import Experiment, NSGAEvolution, SurrogateEvaluator
from repro.nas.searchspace import DEFAULT_SPACE
from repro.pareto import ParetoAnalysis, igd
from repro.pareto.normalize import normalize_minmax
from repro.utils.tables import render_table

_BUDGET = 300


def _objective_matrix(records):
    # Minimization convention: (-acc, lat, mem), normalized jointly later.
    return np.array([[-r["accuracy"], r["latency_ms"], r["memory_mb"]] for r in records])


def test_ablation_multiobjective_search(benchmark, paper_sweep):
    strategy = NSGAEvolution(DEFAULT_SPACE, population_size=32, seed=0)
    experiment = Experiment(SurrogateEvaluator(seed=0), strategy, input_hw=(100, 100))
    result = experiment.run(budget=_BUDGET)

    analysis = ParetoAnalysis()
    grid_front = analysis.front_records(paper_sweep.records)
    moo_front = analysis.front_records(result.store.analysis_records())

    # Joint normalization so IGD distances are comparable across axes.
    all_points = np.vstack([_objective_matrix(grid_front), _objective_matrix(moo_front)])
    normalized = normalize_minmax(all_points)
    grid_norm = normalized[: len(grid_front)]
    moo_norm = normalized[len(grid_front) :]
    coverage = igd(moo_norm, grid_norm)

    hv_grid = analysis.hypervolume(paper_sweep.records)
    hv_moo = analysis.hypervolume(result.store.analysis_records())

    rows = [
        {"approach": "exhaustive grid (paper)", "trials": paper_sweep.launched,
         "front_size": len(grid_front), "best_acc": round(grid_front[0]["accuracy"], 2),
         "hypervolume": round(hv_grid, 4)},
        {"approach": f"NSGA evolution ({_BUDGET})", "trials": result.launched,
         "front_size": len(moo_front), "best_acc": round(moo_front[0]["accuracy"], 2),
         "hypervolume": round(hv_moo, 4)},
    ]
    print()
    print(render_table(rows, title="Ablation — multi-objective search vs exhaustive grid"))
    print(f"IGD of the {_BUDGET}-trial front to the grid front (normalized): {coverage:.4f}")

    # The 300-trial search must recover the grid front's *quality*
    # (hypervolume); exact point coverage (IGD) is looser because the
    # grid front contains near-duplicate members separated only by the
    # 0.6% latency jitter, which no budgeted search can re-hit.
    assert coverage < 0.6
    assert hv_moo >= 0.97 * hv_grid
    assert moo_front[0]["initial_output_feature"] == 32
    assert moo_front[0]["kernel_size"] == 3
    assert moo_front[0]["accuracy"] >= grid_front[0]["accuracy"] - 1.0

    # Benchmark: one full NSGA environmental-selection + proposal cycle.
    def selection_cycle():
        strategy._environmental_selection()
        return next(iter(strategy.propose(1)))

    config = benchmark(selection_cycle)
    assert DEFAULT_SPACE.contains(config)
