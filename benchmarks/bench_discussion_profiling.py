"""Discussion (1) — profiling the NAS workload (Nsight substitute).

The paper reports NNI wall-times of 9h20m-29h per input combination and
proposes profiling to tune the experiments.  This bench profiles the real
(NumPy) training path per layer, confirms compute concentrates where the
search space acts (stem + early stages), and benchmarks one real training
step — the unit whose cost dominates the paper's 38-hour budget.
"""

import numpy as np

from repro.data.dataset import DrainageCrossingDataset
from repro.nas.config import ModelConfig
from repro.nn.loss import CrossEntropyLoss
from repro.nn.optim import SGD
from repro.nn.resnet import build_model
from repro.profiling import profile_model, profile_table
from repro.tensor.tensor import Tensor


def test_discussion_layer_profile(benchmark):
    config = ModelConfig(channels=5, batch=8, kernel_size=3, stride=2, padding=1,
                         pool_choice=0, kernel_size_pool=3, stride_pool=2,
                         initial_output_feature=32)
    model = build_model(config, seed=0)
    profiles = profile_model(model, batch=4, input_hw=(48, 48), repeats=2)
    print()
    print(profile_table(profiles, title="Discussion — per-stage forward profile (winner config)"))

    by_name = {p.name: p for p in profiles}
    assert set(by_name) == {"stem", "layer1", "layer2", "layer3", "layer4", "head"}
    # With a stride-2 stem and no pooling, the early stages carry most FLOPs.
    early = by_name["layer1"].flops + by_name["layer2"].flops
    late = by_name["layer3"].flops + by_name["layer4"].flops
    assert early > late

    # Benchmark: one full real training step (forward+backward+update).
    dataset = DrainageCrossingDataset(channels=5, size=32, samples_per_class=4,
                                      regions=["nebraska"], seed=0)
    x, y = dataset.batch(np.arange(8))
    loss_fn = CrossEntropyLoss()
    optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)

    def step():
        optimizer.zero_grad()
        loss = loss_fn(model(Tensor(x)), y)
        loss.backward()
        optimizer.step()
        return loss.item()

    loss_value = benchmark(step)
    assert np.isfinite(loss_value)
