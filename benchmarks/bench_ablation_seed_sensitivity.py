"""Ablation — seed sensitivity of the paper's conclusions.

The paper reports one NNI run.  This bench repeats the full sweep with a
different noise seed and checks that every conclusion survives: the
accuracy ranking is strongly correlated across runs, the front stays in
the same architecture family, and the best architecture is identical —
i.e. the reproduction's findings are not one lucky draw.
"""

from repro.core.pipeline import run_paper_sweep
from repro.core.sweep_compare import compare_sweeps
from repro.utils.tables import render_table


def test_ablation_seed_sensitivity(benchmark, paper_sweep):
    other = run_paper_sweep(seed=1)
    comparison = compare_sweeps(paper_sweep, other)
    print()
    print("Seed-sensitivity:", comparison.summary())
    rows = [
        {"metric": "aligned trials", "value": comparison.common_trials},
        {"metric": "accuracy Spearman rho", "value": round(comparison.accuracy_spearman, 4)},
        {"metric": "mean |accuracy delta| (pp)", "value": round(comparison.mean_abs_accuracy_delta, 3)},
        {"metric": "front sizes", "value": f"{comparison.front_a_size} / {comparison.front_b_size}"},
        {"metric": "front architecture Jaccard", "value": round(comparison.front_architecture_jaccard, 3)},
        {"metric": "best architecture matches", "value": comparison.best_architecture_matches},
        {"metric": "best family matches", "value": comparison.best_family_matches},
    ]
    print(render_table(rows, title="Ablation — sweep stability across seeds"))

    # The structural signal dominates the trial noise.
    assert comparison.accuracy_spearman > 0.95
    assert comparison.mean_abs_accuracy_delta < 1.0
    # Fronts overlap at the architecture level.
    assert comparison.front_architecture_jaccard >= 0.3

    # The exact accuracy argmax IS noise-sensitive (a ~0.15 pp margin over
    # 1,717 draws of sigma=0.25 noise) — an honest caveat for the paper's
    # single-run Table 4.  What is seed-stable, and what the conclusions
    # rest on, is: (a) the paper's winning architecture (7ch/b16/no-pool/
    # k3/s2/p1/f32) sits on the front of *every* run, and (b) each run's
    # fastest front member comes from the f=32/k3/s2/p1 family.
    def front_keys(result):
        from repro.nas.config import ModelConfig

        return {ModelConfig.from_dict(r).architecture_key() for r in result.front_records()}

    winner_key = (7, 3, 2, 1, 0, 0, 0, 32)  # canonical A architecture
    for result in (paper_sweep, other):
        assert winner_key in front_keys(result)
        fastest = min(result.front_records(), key=lambda r: r["latency_ms"])
        assert fastest["initial_output_feature"] == 32
        assert fastest["kernel_size"] == 3 and fastest["stride"] == 2 and fastest["padding"] == 1

    result = benchmark(compare_sweeps, paper_sweep, other)
    assert result.common_trials > 1600
